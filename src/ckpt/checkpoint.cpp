#include "ptdp/ckpt/checkpoint.hpp"

#include "ptdp/ckpt/reshard.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/stopwatch.hpp"

namespace ptdp::ckpt {

namespace {

constexpr std::uint64_t kMagic = 0x5054'4450'434B'5031ULL;  // "PTDPCKP1"
// v1: implicit f32 payloads. v2: a u32 dtype code follows each tensor's
// shape (payload bytes are numel * itemsize). Readers accept both; writers
// always emit v2.
constexpr std::uint32_t kVersionF32Only = 1;
constexpr std::uint32_t kVersion = 2;

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  PTDP_CHECK(is.good()) << "truncated checkpoint";
  return v;
}

std::uint32_t read_version(std::ifstream& is, const std::string& path) {
  const auto v = read_pod<std::uint32_t>(is);
  PTDP_CHECK(v == kVersionF32Only || v == kVersion)
      << "unsupported checkpoint version " << v << " in " << path;
  return v;
}

tensor::DType dtype_from_code(std::uint32_t code, const std::string& name) {
  PTDP_CHECK_LE(code, static_cast<std::uint32_t>(tensor::DType::kBf16))
      << "unknown dtype code " << code << " for tensor " << name;
  return static_cast<tensor::DType>(code);
}

// Thread-local fault-injection hook (one rank == one thread in the
// thread-backed world, so per-thread scoping gives per-rank scoping).
thread_local WriteHook t_write_hook;

void fire_hook(const std::string& final_path, const std::string& tmp_path,
               WritePhase phase) {
  if (t_write_hook) t_write_hook(final_path, tmp_path, phase);
}

void fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

void fsync_parent_dir(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

// Byte sink that tracks a running whole-file CRC alongside the stream, so
// save_checkpoint can report the CRC of the content it *intended* to write
// (a mid-write corruption of the temp file then disagrees with the file's
// actual CRC and is caught by manifest validation).
class CrcWriter {
 public:
  CrcWriter(const std::string& path) : os_(path, std::ios::binary | std::ios::trunc) {}
  bool good() const { return os_.good(); }
  void write(const void* data, std::size_t len) {
    os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
    crc_ = crc32_update(crc_, data, len);
    bytes_ += static_cast<std::int64_t>(len);
  }
  template <typename T>
  void write_pod(const T& v) {
    write(&v, sizeof(v));
  }
  /// The phase hooks promise "bytes are in the temp file" — flush before
  /// firing them so a hook that inspects or mutates the file sees them all.
  void flush() { os_.flush(); }
  void close() { os_.close(); }
  std::uint32_t crc() const { return crc_; }
  std::int64_t bytes() const { return bytes_; }

 private:
  std::ofstream os_;
  std::uint32_t crc_ = 0;
  std::int64_t bytes_ = 0;
};

/// Removes the temp file on unwind (a hook-simulated crash mid-save must
/// not leave litter; a real crash leaves it, but the next save truncates).
class TmpFileGuard {
 public:
  explicit TmpFileGuard(std::string path) : path_(std::move(path)) {}
  ~TmpFileGuard() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // no-op once renamed away
  }
  TmpFileGuard(const TmpFileGuard&) = delete;
  TmpFileGuard& operator=(const TmpFileGuard&) = delete;

 private:
  std::string path_;
};

// Publishes the closed temp file at its final path: fsync, rename, fsync
// the directory. Fires the corresponding hook phases.
void publish_tmp(const std::string& tmp, const std::string& path) {
  fire_hook(path, tmp, WritePhase::kBeforeFsync);
  fsync_file(tmp);
  fire_hook(path, tmp, WritePhase::kBeforeRename);
  std::filesystem::rename(tmp, path);
  fsync_parent_dir(path);
  fire_hook(path, tmp, WritePhase::kAfterRename);
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = crc_table()[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_update(0, data, len);
}

std::uint32_t file_crc32(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PTDP_CHECK(is.good()) << "cannot open " << path;
  std::uint32_t crc = 0;
  char buf[1 << 16];
  while (is) {
    is.read(buf, sizeof(buf));
    crc = crc32_update(crc, buf, static_cast<std::size_t>(is.gcount()));
  }
  return crc;
}

void set_write_hook(WriteHook hook) { t_write_hook = std::move(hook); }

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  TmpFileGuard guard(tmp);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    PTDP_CHECK(os.good()) << "cannot open " << tmp << " for writing";
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
    os.flush();
    fire_hook(path, tmp, WritePhase::kPayloadWritten);
    PTDP_CHECK(os.good()) << "write failed for " << tmp;
  }
  publish_tmp(tmp, path);
}

SaveResult save_checkpoint(const std::string& path, const NamedTensors& tensors,
                           const CheckpointMeta& meta) {
  obs::Span span("ckpt_write", obs::Cat::kCkpt,
                 {{"step", static_cast<std::int64_t>(meta.step)},
                  {"tensors", static_cast<std::int64_t>(tensors.size())}});
  Stopwatch watch;
  // Write to a temp file and rename into place: the previous checkpoint at
  // `path` stays intact until the new bytes are durably on disk, so there
  // is no window in which a crash leaves a truncated shard.
  const std::string tmp = path + ".tmp";
  TmpFileGuard guard(tmp);
  SaveResult result;
  {
    CrcWriter os(tmp);
    PTDP_CHECK(os.good()) << "cannot open " << tmp << " for writing";
    os.write_pod(kMagic);
    os.write_pod(kVersion);
    os.write_pod(meta.step);
    os.write_pod(meta.extra);
    os.write_pod(static_cast<std::uint64_t>(tensors.size()));
    os.flush();
    fire_hook(path, tmp, WritePhase::kHeaderWritten);
    for (const auto& [name, t] : tensors) {
      PTDP_CHECK(t != nullptr && t->defined()) << "undefined tensor " << name;
      os.write_pod(static_cast<std::uint32_t>(name.size()));
      os.write(name.data(), name.size());
      os.write_pod(static_cast<std::uint32_t>(t->ndim()));
      for (std::int64_t d : t->shape()) os.write_pod(static_cast<std::int64_t>(d));
      os.write_pod(static_cast<std::uint32_t>(t->dtype()));
      auto data = t->raw_bytes();
      os.write_pod(crc32(data.data(), data.size()));
      os.write(data.data(), data.size());
    }
    os.flush();
    fire_hook(path, tmp, WritePhase::kPayloadWritten);
    PTDP_CHECK(os.good()) << "write failed for " << tmp;
    result.bytes = os.bytes();
    result.crc = os.crc();
  }
  publish_tmp(tmp, path);
  span.arg("bytes", static_cast<std::int64_t>(result.bytes));
  if (obs::metrics_on()) {
    auto& metrics = obs::MetricsRegistry::instance();
    metrics.histogram("ckpt.write_ms").observe(watch.elapsed_ms());
    metrics.counter("ckpt.bytes_written").add(static_cast<std::int64_t>(result.bytes));
    metrics.counter("ckpt.shards_written").add(1);
  }
  return result;
}

CheckpointMeta load_checkpoint(const std::string& path, const NamedTensors& tensors) {
  std::ifstream is(path, std::ios::binary);
  PTDP_CHECK(is.good()) << "cannot open " << path;
  PTDP_CHECK_EQ(read_pod<std::uint64_t>(is), kMagic) << "bad magic in " << path;
  const auto version = read_version(is, path);
  CheckpointMeta meta;
  meta.step = read_pod<std::uint64_t>(is);
  meta.extra = read_pod<std::uint64_t>(is);
  const auto count = read_pod<std::uint64_t>(is);
  PTDP_CHECK_EQ(count, tensors.size())
      << "checkpoint has " << count << " tensors, expected " << tensors.size();

  // Saved order must match requested order (both derive from the same
  // deterministic parameter enumeration).
  for (const auto& [name, t] : tensors) {
    const auto name_len = read_pod<std::uint32_t>(is);
    std::string saved_name(name_len, '\0');
    is.read(saved_name.data(), name_len);
    PTDP_CHECK_EQ(saved_name, name) << "tensor order/name mismatch";
    const auto ndim = read_pod<std::uint32_t>(is);
    tensor::Shape shape(ndim);
    for (auto& d : shape) d = read_pod<std::int64_t>(is);
    PTDP_CHECK(shape == t->shape())
        << name << ": checkpoint shape differs from model shape " << t->shape_str();
    const tensor::DType saved_dtype =
        version >= kVersion ? dtype_from_code(read_pod<std::uint32_t>(is), name)
                            : tensor::DType::kF32;
    PTDP_CHECK(saved_dtype == t->dtype())
        << name << ": checkpoint dtype " << tensor::dtype_name(saved_dtype)
        << " does not match model dtype " << tensor::dtype_name(t->dtype())
        << " — resume with a matching GptConfig.dtype (checkpoints are not "
           "converted on load)";
    const auto saved_crc = read_pod<std::uint32_t>(is);
    auto data = t->raw_bytes();
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    PTDP_CHECK(is.good()) << "truncated tensor payload for " << name;
    PTDP_CHECK_EQ(crc32(data.data(), data.size()), saved_crc)
        << "CRC mismatch for " << name << " — corrupted checkpoint";
  }
  return meta;
}

CheckpointMeta peek_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PTDP_CHECK(is.good()) << "cannot open " << path;
  PTDP_CHECK_EQ(read_pod<std::uint64_t>(is), kMagic) << "bad magic in " << path;
  read_version(is, path);
  CheckpointMeta meta;
  meta.step = read_pod<std::uint64_t>(is);
  meta.extra = read_pod<std::uint64_t>(is);
  return meta;
}

namespace {

// Shared payload reader: consumes one (name, shape, [dtype,] crc, data)
// record in the given format version.
std::pair<std::string, tensor::Tensor> read_one_tensor(std::ifstream& is,
                                                       std::uint32_t version) {
  const auto name_len = read_pod<std::uint32_t>(is);
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  const auto ndim = read_pod<std::uint32_t>(is);
  tensor::Shape shape(ndim);
  for (auto& d : shape) d = read_pod<std::int64_t>(is);
  const tensor::DType dtype =
      version >= kVersion ? dtype_from_code(read_pod<std::uint32_t>(is), name)
                          : tensor::DType::kF32;
  const auto saved_crc = read_pod<std::uint32_t>(is);
  tensor::Tensor t = tensor::Tensor::empty(std::move(shape), dtype);
  auto data = t.raw_bytes();
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  PTDP_CHECK(is.good()) << "truncated tensor payload for " << name;
  PTDP_CHECK_EQ(crc32(data.data(), data.size()), saved_crc)
      << "CRC mismatch for " << name;
  return {std::move(name), std::move(t)};
}

}  // namespace

OwnedTensors read_all(const std::string& path, CheckpointMeta* meta_out) {
  std::ifstream is(path, std::ios::binary);
  PTDP_CHECK(is.good()) << "cannot open " << path;
  PTDP_CHECK_EQ(read_pod<std::uint64_t>(is), kMagic) << "bad magic in " << path;
  const auto version = read_version(is, path);
  CheckpointMeta meta;
  meta.step = read_pod<std::uint64_t>(is);
  meta.extra = read_pod<std::uint64_t>(is);
  if (meta_out != nullptr) *meta_out = meta;
  const auto count = read_pod<std::uint64_t>(is);
  OwnedTensors all;
  all.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    all.push_back(read_one_tensor(is, version));
  }
  return all;
}

CheckpointMeta load_checkpoint_by_name(const std::string& path,
                                       const NamedTensors& tensors) {
  CheckpointMeta meta;
  auto all = read_all(path, &meta);
  for (const auto& [name, dst] : tensors) {
    bool found = false;
    for (auto& [saved_name, saved] : all) {
      if (saved_name != name) continue;
      PTDP_CHECK(saved.shape() == dst->shape())
          << name << ": checkpoint shape differs from model shape "
          << dst->shape_str();
      dst->copy_from(saved);
      found = true;
      break;
    }
    PTDP_CHECK(found) << "tensor " << name << " missing from " << path;
  }
  return meta;
}

std::string shard_path(const std::string& dir, int p_idx, int t_idx, int d_idx) {
  return dir + "/shard-p" + std::to_string(p_idx) + "-t" + std::to_string(t_idx) +
         "-d" + std::to_string(d_idx) + ".ckpt";
}

std::string step_dir(const std::string& dir, std::uint64_t step) {
  return dir + "/step-" + std::to_string(step);
}

}  // namespace ptdp::ckpt
