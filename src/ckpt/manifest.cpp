#include "ptdp/ckpt/manifest.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ptdp/ckpt/checkpoint.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/log.hpp"
#include "ptdp/runtime/stopwatch.hpp"

namespace ptdp::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr const char* kLatestName = "LATEST";

std::string manifest_name(std::uint64_t step) {
  return "manifest-" + std::to_string(step) + ".json";
}

// Step encoded in a "manifest-<step>.json" file name; nullopt otherwise.
std::optional<std::uint64_t> step_from_manifest_name(const std::string& name) {
  constexpr const char* prefix = "manifest-";
  constexpr const char* suffix = ".json";
  if (!name.starts_with(prefix) || !name.ends_with(suffix)) return std::nullopt;
  const std::string digits =
      name.substr(9, name.size() - 9 - 5);  // strlen(prefix), strlen(suffix)
  if (digits.empty()) return std::nullopt;
  std::uint64_t step = 0;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    step = step * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return step;
}

// Minimal scanner for the JSON this module itself writes. `pos` advances
// past the parsed token; any mismatch returns false (→ manifest skipped).
bool skip_ws(const std::string& s, std::size_t& pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  return pos < s.size();
}

bool expect(const std::string& s, std::size_t& pos, char c) {
  if (!skip_ws(s, pos) || s[pos] != c) return false;
  ++pos;
  return true;
}

bool parse_string(const std::string& s, std::size_t& pos, std::string* out) {
  if (!expect(s, pos, '"')) return false;
  out->clear();
  while (pos < s.size() && s[pos] != '"') {
    if (s[pos] == '\\') return false;  // we never emit escapes
    out->push_back(s[pos++]);
  }
  return expect(s, pos, '"');
}

bool parse_u64(const std::string& s, std::size_t& pos, std::uint64_t* out) {
  if (!skip_ws(s, pos)) return false;
  if (!std::isdigit(static_cast<unsigned char>(s[pos]))) return false;
  *out = 0;
  while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
    *out = *out * 10 + static_cast<std::uint64_t>(s[pos++] - '0');
  }
  return true;
}

bool parse_key(const std::string& s, std::size_t& pos, const char* key) {
  std::string k;
  return parse_string(s, pos, &k) && k == key && expect(s, pos, ':');
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return std::nullopt;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace

std::string manifest_to_json(const Manifest& m) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"step\": " << m.step << ",\n";
  os << "  \"extra\": " << m.extra << ",\n";
  os << "  \"shards\": [\n";
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    const ManifestEntry& e = m.shards[i];
    os << "    { \"file\": \"" << e.file << "\", \"bytes\": " << e.bytes
       << ", \"crc\": " << e.crc << ", \"dtype\": \"" << e.dtype
       << "\", \"master\": " << (e.has_master_weights ? 1 : 0) << " }"
       << (i + 1 < m.shards.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::optional<Manifest> parse_manifest_json(const std::string& text) {
  Manifest m;
  std::size_t pos = 0;
  if (!expect(text, pos, '{')) return std::nullopt;
  if (!parse_key(text, pos, "step") || !parse_u64(text, pos, &m.step)) {
    return std::nullopt;
  }
  if (!expect(text, pos, ',') || !parse_key(text, pos, "extra") ||
      !parse_u64(text, pos, &m.extra)) {
    return std::nullopt;
  }
  if (!expect(text, pos, ',') || !parse_key(text, pos, "shards") ||
      !expect(text, pos, '[')) {
    return std::nullopt;
  }
  if (!skip_ws(text, pos)) return std::nullopt;
  if (text[pos] != ']') {
    while (true) {
      ManifestEntry e;
      std::uint64_t crc = 0;
      if (!expect(text, pos, '{') || !parse_key(text, pos, "file") ||
          !parse_string(text, pos, &e.file) || !expect(text, pos, ',') ||
          !parse_key(text, pos, "bytes") || !parse_u64(text, pos, &e.bytes) ||
          !expect(text, pos, ',') || !parse_key(text, pos, "crc") ||
          !parse_u64(text, pos, &crc)) {
        return std::nullopt;
      }
      if (crc > 0xFFFFFFFFull) return std::nullopt;
      e.crc = static_cast<std::uint32_t>(crc);
      // Optional precision fields (absent in manifests written before the
      // mixed-precision plane; ManifestEntry defaults cover those).
      if (!skip_ws(text, pos)) return std::nullopt;
      if (text[pos] == ',') {
        ++pos;
        std::uint64_t master = 0;
        if (!parse_key(text, pos, "dtype") || !parse_string(text, pos, &e.dtype) ||
            !expect(text, pos, ',') || !parse_key(text, pos, "master") ||
            !parse_u64(text, pos, &master) || master > 1) {
          return std::nullopt;
        }
        e.has_master_weights = master == 1;
      }
      if (!expect(text, pos, '}')) return std::nullopt;
      m.shards.push_back(std::move(e));
      if (!skip_ws(text, pos)) return std::nullopt;
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
  }
  if (!expect(text, pos, ']') || !expect(text, pos, '}')) return std::nullopt;
  if (m.shards.empty()) return std::nullopt;  // an empty commit is never valid
  return m;
}

void write_manifest(const std::string& dir, const Manifest& m) {
  PTDP_CHECK(!m.shards.empty()) << "refusing to commit an empty manifest";
  obs::Span span("ckpt_commit", obs::Cat::kCkpt,
                 {{"step", static_cast<std::int64_t>(m.step)},
                  {"shards", static_cast<std::int64_t>(m.shards.size())}});
  Stopwatch watch;
  const std::string name = manifest_name(m.step);
  write_file_atomic(dir + "/" + name, manifest_to_json(m));
  // The LATEST swing is the commit point for the fast path; even if it is
  // lost or stale, the manifest scan in find_latest_valid_checkpoint still
  // discovers the new checkpoint.
  write_file_atomic(dir + "/" + std::string(kLatestName), name + "\n");
  if (obs::metrics_on()) {
    auto& metrics = obs::MetricsRegistry::instance();
    metrics.histogram("ckpt.commit_ms").observe(watch.elapsed_ms());
    metrics.counter("ckpt.commits").add(1);
  }
}

std::optional<Manifest> read_manifest(const std::string& path) {
  const auto text = read_text_file(path);
  if (!text) return std::nullopt;
  return parse_manifest_json(*text);
}

bool validate_manifest(const std::string& dir, const Manifest& m) {
  for (const ManifestEntry& e : m.shards) {
    const std::string path = dir + "/" + e.file;
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec || size != e.bytes) return false;
    try {
      if (file_crc32(path) != e.crc) return false;
    } catch (const CheckError&) {
      return false;
    }
  }
  return true;
}

std::optional<CommittedCheckpoint> find_latest_valid_checkpoint(
    const std::string& dir, const std::optional<std::string>& expected_dtype) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) return std::nullopt;

  // Candidate manifest file names, newest first. The LATEST marker's target
  // goes first (fast path); then every manifest on disk by descending step,
  // so a stale or corrupt marker degrades to a scan instead of an error.
  std::vector<std::pair<std::uint64_t, std::string>> by_step;
  try {
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (const auto step = step_from_manifest_name(name)) {
        by_step.emplace_back(*step, name);
      }
    }
  } catch (const std::exception& e) {
    // directory_iterator's increment throws (the ec overload only covers
    // construction); a racing gc/rmdir must degrade to "partial listing",
    // not abort the recovery path.
    PTDP_LOG_WARN << "ckpt scan: directory listing aborted early (" << e.what() << ")";
  }
  std::sort(by_step.begin(), by_step.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<std::string> candidates;
  if (const auto latest = read_text_file(dir + "/" + kLatestName)) {
    std::string target = *latest;
    while (!target.empty() && (target.back() == '\n' || target.back() == '\r')) {
      target.pop_back();
    }
    if (step_from_manifest_name(target)) candidates.push_back(target);
  }
  for (const auto& [step, name] : by_step) {
    if (std::find(candidates.begin(), candidates.end(), name) == candidates.end()) {
      candidates.push_back(name);
    }
  }
  // Keep strict newest-first order even when LATEST is stale: a marker
  // pointing at an old (but valid) manifest must not shadow a newer one.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const std::string& a, const std::string& b) {
                     return step_from_manifest_name(a).value_or(0) >
                            step_from_manifest_name(b).value_or(0);
                   });

  for (const std::string& name : candidates) {
    // The scan must never throw past a bad candidate: a truncated or
    // garbage manifest-<N>.json (torn write, disk corruption, a kill mid-
    // commit) is an expected artifact of the crashes this module exists to
    // survive. Read/parse/validate failures — including anything the
    // filesystem or CRC layer throws — demote the candidate with a warning
    // and the scan moves on to the next-newest.
    std::optional<Manifest> m;
    try {
      m = read_manifest(dir + "/" + name);
      if (m && !validate_manifest(dir, *m)) {
        PTDP_LOG_WARN << "ckpt scan: skipping " << name
                      << " (shard validation failed: missing/short/corrupt shard)";
        continue;
      }
    } catch (const std::exception& e) {
      PTDP_LOG_WARN << "ckpt scan: skipping " << name << " (" << e.what() << ")";
      continue;
    }
    if (!m) {
      PTDP_LOG_WARN << "ckpt scan: skipping " << name
                    << " (unreadable or malformed manifest JSON)";
      continue;
    }
    if (expected_dtype) {
      // The newest valid checkpoint decides: resuming a run at a different
      // precision than it was checkpointed at is an operator error, not
      // something to silently skip past in search of an older match.
      for (const ManifestEntry& e : m->shards) {
        PTDP_CHECK_EQ(e.dtype, *expected_dtype)
            << "checkpoint " << name << " (shard " << e.file
            << ") was written with dtype " << e.dtype
            << " but this run uses dtype " << *expected_dtype
            << " — restart with the matching GptConfig.dtype or point at a "
               "different checkpoint dir";
      }
    }
    return CommittedCheckpoint{*m, dir, step_dir(dir, m->step)};
  }
  return std::nullopt;
}

void gc_checkpoints(const std::string& dir, int keep) {
  PTDP_CHECK_GE(keep, 1);
  std::error_code ec;
  std::vector<std::uint64_t> steps;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (const auto step = step_from_manifest_name(entry.path().filename().string())) {
      steps.push_back(*step);
    }
  }
  std::sort(steps.begin(), steps.end(), std::greater<>());
  for (std::size_t i = static_cast<std::size_t>(keep); i < steps.size(); ++i) {
    fs::remove(dir + "/" + manifest_name(steps[i]), ec);
    fs::remove_all(step_dir(dir, steps[i]), ec);
  }
}

}  // namespace ptdp::ckpt
