#include "ptdp/zero/sharded_optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "ptdp/tensor/ops.hpp"

namespace ptdp::zero {

using model::Param;
using tensor::Tensor;

ZeroShardedAdam::ZeroShardedAdam(model::ParamRefs params, dist::Comm dp,
                                 ZeroAdamOptions options)
    : params_(std::move(params)), dp_(std::move(dp)), options_(options) {
  std::int64_t elems = 0;
  for (Param* p : params_) elems += p->value.numel();
  const std::int64_t d = dp_.size();
  total_elems_ = (elems + d - 1) / d * d;  // pad so shards are equal
  shard_ = total_elems_ / d;
  master_shard_ = Tensor({shard_});
  m_shard_ = Tensor({shard_});
  v_shard_ = Tensor({shard_});
  // Seed the master shard from the (replicated) initial weights.
  Tensor flat({total_elems_});
  flatten_params(flat);
  std::copy_n(flat.data().data() + dp_.rank() * shard_, shard_,
              master_shard_.data().data());
}

void ZeroShardedAdam::flatten_params(Tensor& flat) const {
  auto out = flat.data();
  std::int64_t off = 0;
  for (const Param* p : params_) {
    auto in = p->value.data();
    std::copy(in.begin(), in.end(), out.begin() + off);
    off += p->value.numel();
  }
  std::fill(out.begin() + off, out.end(), 0.0f);
}

void ZeroShardedAdam::unflatten_params(const Tensor& flat) {
  auto in = flat.data();
  std::int64_t off = 0;
  for (Param* p : params_) {
    auto out = p->value.data();
    std::copy_n(in.begin() + off, p->value.numel(), out.begin());
    off += p->value.numel();
  }
}

void ZeroShardedAdam::flatten_grads(Tensor& flat) const {
  auto out = flat.data();
  std::int64_t off = 0;
  for (const Param* p : params_) {
    auto in = p->grad.data();
    std::copy(in.begin(), in.end(), out.begin() + off);
    off += p->grad.numel();
  }
  std::fill(out.begin() + off, out.end(), 0.0f);
}

void ZeroShardedAdam::step() {
  ++step_count_;
  const std::int64_t d = dp_.size();

  // 1. Reduce-scatter grads: each rank ends with the *sum* of its shard;
  //    divide by d for the data-parallel mean.
  Tensor flat_grads({total_elems_});
  flatten_grads(flat_grads);
  Tensor grad_shard({shard_});
  dp_.reduce_scatter(flat_grads.data(), grad_shard.data());
  tensor::scale_(grad_shard, 1.0f / static_cast<float>(d));

  // 2. Adam on the local shard only.
  const auto& o = options_.adam;
  const double bc1 = 1.0 - std::pow(o.beta1, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(o.beta2, static_cast<double>(step_count_));
  const float lr_t = o.lr * static_cast<float>(std::sqrt(bc2) / bc1);
  auto w = master_shard_.data();
  auto g = grad_shard.data();
  auto m = m_shard_.data();
  auto v = v_shard_.data();
  for (std::int64_t j = 0; j < shard_; ++j) {
    const auto i = static_cast<std::size_t>(j);
    const float grad = g[i] + o.weight_decay * w[i];
    m[i] = o.beta1 * m[i] + (1.0f - o.beta1) * grad;
    v[i] = o.beta2 * v[i] + (1.0f - o.beta2) * grad * grad;
    w[i] -= lr_t * m[i] / (std::sqrt(v[i]) + o.eps);
  }

  // 3. All-gather the updated parameters (ZeRO-3's gather-before-use).
  Tensor flat_params({total_elems_});
  dp_.all_gather(std::span<const float>(master_shard_.data()), flat_params.data());
  unflatten_params(flat_params);
}

optim::NamedState ZeroShardedAdam::state_tensors() {
  return {{"zero.master_shard", &master_shard_},
          {"zero.adam_m_shard", &m_shard_},
          {"zero.adam_v_shard", &v_shard_}};
}

std::int64_t ZeroShardedAdam::local_state_bytes() const {
  return 3 * shard_ * static_cast<std::int64_t>(sizeof(float));
}

}  // namespace ptdp::zero
