#include "ptdp/ft/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/stopwatch.hpp"

namespace ptdp::ft {

ScopedCkptFaultHook::ScopedCkptFaultHook(dist::FaultPlan* plan, int rank) {
  if (plan == nullptr) return;
  installed_ = true;
  ckpt::set_write_hook([plan, rank](const std::string& final_path,
                                    const std::string& tmp_path,
                                    ckpt::WritePhase phase) {
    plan->on_file_phase(rank, final_path, tmp_path,
                        ckpt::phase_is_pre_rename(phase));
  });
}

ScopedCkptFaultHook::~ScopedCkptFaultHook() {
  if (installed_) ckpt::set_write_hook({});
}

TrainSupervisor::TrainSupervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  PTDP_CHECK(!options_.ckpt_dir.empty()) << "supervisor needs a checkpoint dir";
  PTDP_CHECK_GE(options_.max_restarts, 0);
}

const RecoveryStats& TrainSupervisor::run(const WorldFactory& factory,
                                          const Body& body) {
  stats_ = RecoveryStats{};
  double backoff = options_.backoff_initial_s;
  Stopwatch recovery;  // read only after a failure has been caught
  dist::FaultPlan* plan = options_.fault_plan.get();

  for (int attempt = 0;; ++attempt) {
    std::unique_ptr<dist::World> world = factory(attempt);
    PTDP_CHECK(world != nullptr) << "world factory returned null";
    if (options_.fault_plan) world->set_fault_plan(options_.fault_plan);

    std::uint64_t start_step = 0;
    if (const auto best = ckpt::find_latest_valid_checkpoint(options_.ckpt_dir)) {
      start_step = best->step();
    }
    if (!stats_.events.empty() && attempt > 0) {
      stats_.events.back().resumed_step = start_step;
      const FailureRecord& f = stats_.events.back();
      stats_.steps_lost += f.failed_step > start_step ? f.failed_step - start_step : 0;
    }

    ++stats_.attempts;
    try {
      world->run([&](dist::Comm& comm) {
        // Bridge checkpoint write phases into the plan on this rank thread.
        ScopedCkptFaultHook hook(plan, comm.world_rank());
        if (attempt > 0 && comm.world_rank() == 0) {
          stats_.total_recovery_seconds += recovery.elapsed_seconds();
        }
        body(comm, start_step, attempt);
      });
      stats_.succeeded = true;
      return stats_;
    } catch (const dist::RankFailure& f) {
      recovery.reset();
      ++stats_.failures;
      stats_.events.push_back(FailureRecord{attempt, f.rank(), f.step(),
                                            /*resumed_step=*/0, f.what(),
                                            /*backoff_s=*/0.0});
      if (attempt >= options_.max_restarts) throw;
      if (backoff > 0.0) {
        stats_.events.back().backoff_s = backoff;
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      backoff = std::min(backoff * options_.backoff_multiplier,
                         options_.backoff_max_s);
    }
  }
}

}  // namespace ptdp::ft
