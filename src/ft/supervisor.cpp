#include "ptdp/ft/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/log.hpp"
#include "ptdp/runtime/stopwatch.hpp"

namespace ptdp::ft {

namespace {

/// What the escalation engine decided about one caught RankFailure.
struct Diagnosis {
  int victim = -1;
  Health health = Health::kDead;
  std::uint64_t detect_latency_steps = 0;
};

/// Classifies a RankFailure by rethrowing its root cause. The victim is
/// the rank the *healing* must target: a DegradedWorldError names its
/// diagnosed rank (every rank throws the same verdict, so the thrower is
/// irrelevant); a RankTimeout names the sender that went silent; anything
/// else is a crash of the throwing rank.
Diagnosis diagnose(const dist::RankFailure& f) {
  Diagnosis d;
  d.victim = f.rank();
  try {
    f.rethrow_cause();
  } catch (const DegradedWorldError& e) {
    d.victim = e.rank();
    d.health = e.health();
    const RankVerdict& v = e.verdict();
    d.detect_latency_steps =
        v.step >= v.suspect_since ? v.step - v.suspect_since : 0;
  } catch (const dist::RankTimeout& t) {
    d.victim = t.src();
    d.health = Health::kHung;
  } catch (...) {
    d.health = Health::kDead;  // plain crash (InjectedFault, real bug, ...)
  }
  return d;
}

}  // namespace

ScopedCkptFaultHook::ScopedCkptFaultHook(dist::FaultPlan* plan, int rank) {
  if (plan == nullptr) return;
  installed_ = true;
  ckpt::set_write_hook([plan, rank](const std::string& final_path,
                                    const std::string& tmp_path,
                                    ckpt::WritePhase phase) {
    plan->on_file_phase(rank, final_path, tmp_path,
                        ckpt::phase_is_pre_rename(phase));
  });
}

ScopedCkptFaultHook::~ScopedCkptFaultHook() {
  if (installed_) ckpt::set_write_hook({});
}

TrainSupervisor::TrainSupervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  PTDP_CHECK(!options_.ckpt_dir.empty()) << "supervisor needs a checkpoint dir";
  PTDP_CHECK_GE(options_.max_restarts, 0);
}

const RecoveryStats& TrainSupervisor::run(const ElasticWorldFactory& factory,
                                          const Body& body) {
  stats_ = RecoveryStats{};
  double backoff = options_.backoff_initial_s;
  Stopwatch recovery;  // read only after a failure has been caught
  dist::FaultPlan* plan = options_.fault_plan.get();
  RestartContext ctx;
  // Verdict offenses per victim within this run() — the escalation ladder's
  // memory. A sticky degradation re-offends after restart-in-place, which
  // is what pushes the same victim past restarts_before_evict.
  std::unordered_map<int, int> offenses;

  for (int attempt = 0;; ++attempt) {
    ctx.attempt = attempt;
    ctx.resume_step = 0;
    if (const auto best = ckpt::find_latest_valid_checkpoint(options_.ckpt_dir)) {
      ctx.resume_step = best->step();
    }
    std::unique_ptr<dist::World> world = factory(ctx);
    PTDP_CHECK(world != nullptr) << "world factory returned null";
    if (options_.fault_plan) world->set_fault_plan(options_.fault_plan);
    world->set_timeouts(options_.timeouts);
    if (options_.health) options_.health->begin_run(world->size());

    const std::uint64_t start_step = ctx.resume_step;
    if (!stats_.events.empty() && attempt > 0) {
      stats_.events.back().resumed_step = start_step;
      const FailureRecord& f = stats_.events.back();
      stats_.steps_lost += f.failed_step > start_step ? f.failed_step - start_step : 0;
    }

    ++stats_.attempts;
    try {
      world->run([&](dist::Comm& comm) {
        // Bridge checkpoint write phases into the plan on this rank thread.
        ScopedCkptFaultHook hook(plan, comm.world_rank());
        if (attempt > 0 && comm.world_rank() == 0) {
          const double elapsed = recovery.elapsed_seconds();
          stats_.total_recovery_seconds += elapsed;
          stats_.last_recovery_seconds = elapsed;
          if (obs::metrics_on()) {
            obs::MetricsRegistry::instance()
                .gauge("ft.last_recovery_ms")
                .set(elapsed * 1e3);
          }
        }
        body(comm, start_step, attempt);
      });
      stats_.succeeded = true;
      return stats_;
    } catch (const dist::RankFailure& f) {
      recovery.reset();
      ++stats_.failures;
      const Diagnosis diag = diagnose(f);
      FailureRecord rec{attempt, f.rank(), f.step(),
                        /*resumed_step=*/0, f.what(),
                        /*backoff_s=*/0.0};
      rec.victim = diag.victim;
      rec.victim_health = diag.health;
      rec.detect_latency_steps = diag.detect_latency_steps;

      // Escalation ladder: degraded verdicts (straggler / hung) accumulate
      // offenses per victim; past the grace budget the victim is evicted
      // and the next layout excludes it. Crashes restart in place.
      const bool degraded =
          diag.health == Health::kStraggler || diag.health == Health::kHung;
      bool evict = false;
      if (degraded) {
        const int n = ++offenses[diag.victim];
        evict = n > options_.escalation.restarts_before_evict;
        if (options_.health) {
          if (diag.health == Health::kHung) {
            options_.health->note_hung(diag.victim, f.step());
          }
        }
      }
      rec.evicted = evict;
      stats_.events.push_back(rec);
      if (obs::metrics_on()) {
        auto& m = obs::MetricsRegistry::instance();
        m.counter("ft.restarts_total").add(1);
        m.gauge("ft.detect_latency_steps")
            .set(static_cast<double>(diag.detect_latency_steps));
      }

      if (evict) {
        ++stats_.evictions;
        ctx.evicted.push_back(diag.victim);
        ctx.last_victim = diag.victim;
        ctx.last_health = diag.health;
        if (plan != nullptr) plan->quarantine_rank(diag.victim);
        if (obs::metrics_on()) {
          obs::MetricsRegistry::instance().counter("ft.evictions_total").add(1);
        }
        PTDP_LOG_WARN << "supervisor: evicting rank " << diag.victim << " ("
                      << health_name(diag.health) << ", offense " << offenses[diag.victim]
                      << ") — elastic relayout without it";
      } else {
        ctx.last_victim = diag.victim;
        ctx.last_health = diag.health;
        PTDP_LOG_WARN << "supervisor: attempt " << attempt << " failed — rank "
                      << diag.victim << " is " << health_name(diag.health)
                      << (degraded
                              ? ", restart-in-place (offense " +
                                    std::to_string(offenses[diag.victim]) + "/" +
                                    std::to_string(
                                        options_.escalation.restarts_before_evict + 1) +
                                    ")"
                              : ", restart-in-place")
                      << ": " << f.what();
      }

      if (attempt >= options_.max_restarts) throw;
      if (backoff > 0.0) {
        stats_.events.back().backoff_s = backoff;
        if (options_.sleep_fn) {
          options_.sleep_fn(backoff);
        } else {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        }
      }
      backoff = std::min(backoff * options_.backoff_multiplier,
                         options_.backoff_max_s);
    }
  }
}

}  // namespace ptdp::ft
