#include "ptdp/ft/health.hpp"

#include <algorithm>

#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/stopwatch.hpp"

namespace ptdp::ft {

namespace {

std::string describe(const RankVerdict& v) {
  std::string msg = "degraded world: rank " + std::to_string(v.rank) + " is " +
                    health_name(v.health) + " (step " + std::to_string(v.step) + ")";
  if (v.health == Health::kStraggler) {
    msg += ": busy EWMA " + std::to_string(v.busy_ewma_s * 1e3) + " ms vs peer median " +
           std::to_string(v.peer_median_s * 1e3) + " ms, suspect since step " +
           std::to_string(v.suspect_since);
  }
  return msg;
}

}  // namespace

const char* health_name(Health h) {
  switch (h) {
    case Health::kHealthy: return "healthy";
    case Health::kStraggler: return "straggler";
    case Health::kHung: return "hung";
    case Health::kDead: return "dead";
  }
  return "?";
}

DegradedWorldError::DegradedWorldError(const RankVerdict& v)
    : std::runtime_error(describe(v)), verdict_(v) {}

HealthMonitor::HealthMonitor(HealthOptions opts)
    : opts_(opts), now_ns_(&ptdp::steady_now_ns) {
  PTDP_CHECK_GT(opts_.ewma_alpha, 0.0);
  PTDP_CHECK_LE(opts_.ewma_alpha, 1.0);
  PTDP_CHECK_GT(opts_.straggler_ratio, 1.0);
  PTDP_CHECK_GE(opts_.straggler_patience, 1);
}

void HealthMonitor::begin_run(int world_size) {
  PTDP_CHECK_GT(world_size, 0);
  std::lock_guard lock(mu_);
  ranks_.assign(static_cast<std::size_t>(world_size), RankState{});
  verdict_.reset();
}

void HealthMonitor::latch_verdict_locked(const RankVerdict& v) {
  if (!verdict_.has_value()) verdict_ = v;
}

bool HealthMonitor::peer_median_locked(int rank, double* out) const {
  std::vector<double> peers;
  peers.reserve(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (static_cast<int>(r) == rank) continue;
    if (ranks_[r].has_sample) peers.push_back(ranks_[r].busy_ewma_s);
  }
  if (peers.empty()) return false;
  // Median of the *other* ranks, so the suspect's own inflated EWMA never
  // dilutes the baseline — this is what makes the rule work even in a
  // 2-rank world, where a global median would sit halfway up the outlier.
  const auto mid = peers.begin() + static_cast<std::ptrdiff_t>(peers.size() / 2);
  std::nth_element(peers.begin(), mid, peers.end());
  *out = *mid;
  return true;
}

void HealthMonitor::record_step(int rank, std::uint64_t step, double wall_s,
                                double busy_s, double wait_s) {
  std::lock_guard lock(mu_);
  PTDP_CHECK_GE(rank, 0);
  PTDP_CHECK_LT(static_cast<std::size_t>(rank), ranks_.size());
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  rs.last_heartbeat_ns = now_ns_();
  rs.heartbeat_seen = true;

  if (rs.has_sample) {
    rs.busy_ewma_s = opts_.ewma_alpha * busy_s + (1.0 - opts_.ewma_alpha) * rs.busy_ewma_s;
  } else {
    rs.busy_ewma_s = busy_s;
    rs.has_sample = true;
  }

  if (step < opts_.warmup_steps) return;  // warm caches, first-touch pages

  double median = 0.0;
  const bool suspect = peer_median_locked(rank, &median) &&
                       rs.busy_ewma_s > opts_.min_busy_seconds &&
                       rs.busy_ewma_s > opts_.straggler_ratio * median;
  if (!suspect) {
    rs.suspect_streak = 0;
    return;
  }
  if (rs.suspect_streak == 0) rs.suspect_since = step;
  ++rs.suspect_streak;
  if (rs.suspect_streak >= opts_.straggler_patience) {
    rs.health = Health::kStraggler;
    RankVerdict v;
    v.rank = rank;
    v.health = Health::kStraggler;
    v.step = step;
    v.suspect_since = rs.suspect_since;
    v.busy_ewma_s = rs.busy_ewma_s;
    v.peer_median_s = median;
    v.wait_share = wall_s > 0.0 ? wait_s / wall_s : 0.0;
    latch_verdict_locked(v);
  }
}

void HealthMonitor::heartbeat(int rank) {
  std::lock_guard lock(mu_);
  PTDP_CHECK_GE(rank, 0);
  PTDP_CHECK_LT(static_cast<std::size_t>(rank), ranks_.size());
  ranks_[static_cast<std::size_t>(rank)].last_heartbeat_ns = now_ns_();
  ranks_[static_cast<std::size_t>(rank)].heartbeat_seen = true;
}

void HealthMonitor::note_hung(int rank, std::uint64_t step) {
  std::lock_guard lock(mu_);
  if (rank >= 0 && static_cast<std::size_t>(rank) < ranks_.size()) {
    ranks_[static_cast<std::size_t>(rank)].health = Health::kHung;
  }
  RankVerdict v;
  v.rank = rank;
  v.health = Health::kHung;
  v.step = step;
  latch_verdict_locked(v);
}

void HealthMonitor::note_dead(int rank, std::uint64_t step) {
  std::lock_guard lock(mu_);
  if (rank >= 0 && static_cast<std::size_t>(rank) < ranks_.size()) {
    ranks_[static_cast<std::size_t>(rank)].health = Health::kDead;
  }
  RankVerdict v;
  v.rank = rank;
  v.health = Health::kDead;
  v.step = step;
  latch_verdict_locked(v);
}

void HealthMonitor::enforce() {
  std::optional<RankVerdict> standing;
  {
    std::lock_guard lock(mu_);
    if (!verdict_.has_value() && opts_.heartbeat_timeout_s > 0.0) {
      const std::int64_t now = now_ns_();
      const auto limit_ns =
          static_cast<std::int64_t>(opts_.heartbeat_timeout_s * 1e9);
      for (std::size_t r = 0; r < ranks_.size(); ++r) {
        RankState& rs = ranks_[r];
        if (!rs.heartbeat_seen) continue;  // never started — not "went quiet"
        if (now - rs.last_heartbeat_ns > limit_ns) {
          rs.health = Health::kHung;
          RankVerdict v;
          v.rank = static_cast<int>(r);
          v.health = Health::kHung;
          latch_verdict_locked(v);
          break;
        }
      }
    }
    standing = verdict_;
  }
  if (standing.has_value()) throw DegradedWorldError(*standing);
}

std::optional<RankVerdict> HealthMonitor::verdict() const {
  std::lock_guard lock(mu_);
  return verdict_;
}

Health HealthMonitor::health(int rank) const {
  std::lock_guard lock(mu_);
  if (rank >= 0 && static_cast<std::size_t>(rank) < ranks_.size()) {
    return ranks_[static_cast<std::size_t>(rank)].health;
  }
  if (verdict_.has_value() && verdict_->rank == rank) return verdict_->health;
  return Health::kHealthy;
}

void HealthMonitor::set_clock(std::function<std::int64_t()> now_ns) {
  std::lock_guard lock(mu_);
  now_ns_ = std::move(now_ns);
}

int HealthMonitor::world_size() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(ranks_.size());
}

}  // namespace ptdp::ft
