#include "ptdp/comm/grad_reducer.hpp"

#include <algorithm>

#include "ptdp/obs/trace.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace ptdp::comm {

using model::Param;

GradReducer::GradReducer(std::vector<model::ParamRefs> chunk_params, dist::Comm data,
                         GradReducerOptions options, std::vector<bool> defer)
    : chunk_params_(std::move(chunk_params)),
      data_(std::move(data)),
      options_(options),
      defer_(std::move(defer)),
      reduced_(chunk_params_.size(), false) {
  if (defer_.empty()) defer_.assign(chunk_params_.size(), false);
  PTDP_CHECK_EQ(defer_.size(), chunk_params_.size());
  // The bucket plan: walk each chunk's bucketing once to size the arena's
  // bucket slot at the largest flush any chunk ever needs. Depends only on
  // (chunk params, bucket_elems) — the same pure function reduce_chunk
  // replays, so the slot never regrows after construction.
  const std::int64_t cap = options_.bucket_elems;
  for (const model::ParamRefs& refs : chunk_params_) {
    std::int64_t cur = 0;
    for (const Param* p : refs) {
      PTDP_CHECK(p != nullptr);
      const std::int64_t g = p->grad.numel();
      if (cap > 0) {
        if (cur != 0 && cur + g > cap) cur = 0;
        cur += g;
      } else {
        cur = g;  // per-param reduction: the wire slots see one grad
      }
      max_bucket_elems_ =
          std::max(max_bucket_elems_, static_cast<std::size_t>(cur));
    }
  }
}

void GradReducer::on_chunk_grads_ready(int chunk) {
  PTDP_CHECK_GE(chunk, 0);
  PTDP_CHECK_LT(static_cast<std::size_t>(chunk), chunk_params_.size());
  if (!enabled() || !options_.overlap) return;
  if (defer_[static_cast<std::size_t>(chunk)]) return;
  PTDP_CHECK(!reduced_[static_cast<std::size_t>(chunk)])
      << "chunk " << chunk << " signalled ready twice in one batch";
  reduce_chunk(static_cast<std::size_t>(chunk), /*overlapped=*/true);
}

void GradReducer::finish() {
  if (!enabled()) return;
  for (std::size_t c = 0; c < chunk_params_.size(); ++c) {
    if (!reduced_[c]) reduce_chunk(c, /*overlapped=*/false);
  }
  reduced_.assign(chunk_params_.size(), false);
}

void GradReducer::reduce_span(std::span<float> data) {
  const float inv_d = 1.0f / static_cast<float>(data_.size());
  if (options_.comm_dtype == tensor::DType::kBf16) {
    // Low-precision reduction: each rank contributes its grads as bf16,
    // the group all-gathers the d payloads (half the wire bytes of an f32
    // ring all-reduce at d = 2), and every rank sums the widened
    // contributions in f32 in rank order — a fixed association, so the
    // result is deterministic and identical on all ranks.
    const std::size_t n = data.size();
    const std::size_t d = static_cast<std::size_t>(data_.size());
    std::span<tensor::bf16_t> wire16 =
        arena_.get<tensor::bf16_t>(kWire16, n);
    tensor::narrow_bf16(data, wire16);
    std::span<tensor::bf16_t> gathered16 =
        arena_.get<tensor::bf16_t>(kGathered16, n * d);
    data_.all_gather(std::span<const tensor::bf16_t>(wire16), gathered16);
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t r = 0; r < d; ++r) {
        acc += tensor::bf16_to_f32(gathered16[r * n + j]);
      }
      data[j] = acc * inv_d;
    }
    return;
  }
  data_.all_reduce(data);
  for (float& v : data) v *= inv_d;
}

void GradReducer::reduce_chunk(std::size_t c, bool overlapped) {
  obs::Span span("grad_reduce", obs::Cat::kCollective,
                 {{"chunk", static_cast<std::int64_t>(c)},
                  {"overlapped", overlapped ? 1 : 0}});
  const std::uint64_t before = elems_reduced_;
  const std::int64_t cap = options_.bucket_elems;
  reduced_[c] = true;
  if (cap <= 0) {
    for (Param* p : chunk_params_[c]) {
      reduce_span(p->grad.data());
      elems_reduced_ += p->grad.data().size();
    }
    if (overlapped) elems_overlapped_ += elems_reduced_ - before;
    span.arg("elems", static_cast<std::int64_t>(elems_reduced_ - before));
    return;
  }
  // Bucket boundaries depend only on the chunk's param order and cap, never
  // on reduction timing — the bitwise overlap-on/off guarantee. The bucket
  // lives in the planned arena, sized once at construction to the largest
  // flush of any chunk (max_bucket_elems_).
  std::span<float> bucket = arena_.get<float>(kBucket, max_bucket_elems_);
  std::vector<Param*>& members = members_;
  std::size_t len = 0;
  members.clear();
  auto flush = [&] {
    if (len == 0) return;
    reduce_span(bucket.first(len));
    elems_reduced_ += len;
    std::size_t off = 0;
    for (Param* p : members) {
      auto g = p->grad.data();
      for (std::size_t j = 0; j < g.size(); ++j) g[j] = bucket[off + j];
      off += g.size();
    }
    len = 0;
    members.clear();
  };
  for (Param* p : chunk_params_[c]) {
    auto g = p->grad.data();
    if (len != 0 && static_cast<std::int64_t>(len + g.size()) > cap) {
      flush();
    }
    PTDP_CHECK_LE(len + g.size(), bucket.size())
        << "bucket plan undersized for chunk " << c;
    std::copy(g.begin(), g.end(), bucket.begin() + static_cast<std::ptrdiff_t>(len));
    len += g.size();
    members.push_back(p);
  }
  flush();
  if (overlapped) elems_overlapped_ += elems_reduced_ - before;
  span.arg("elems", static_cast<std::int64_t>(elems_reduced_ - before));
}

}  // namespace ptdp::comm
