#include "ptdp/serve/loadgen.hpp"

#include <algorithm>

namespace ptdp::serve {

LoadGen::LoadGen(LoadGenOptions options) : options_(options) {
  PTDP_CHECK_GT(options_.users, 0);
  PTDP_CHECK_GT(options_.requests_per_user, 0);
  PTDP_CHECK_GT(options_.vocab, 0);
  PTDP_CHECK_GT(options_.window, 0);
  PTDP_CHECK_GE(options_.prompt_min, 1);
  PTDP_CHECK_LE(options_.prompt_min, options_.prompt_max);
  PTDP_CHECK_LE(options_.prompt_max, options_.window);
  PTDP_CHECK_GE(options_.max_new_min, 1);
  PTDP_CHECK_LE(options_.max_new_min, options_.max_new_max);
  users_.resize(static_cast<std::size_t>(options_.users));
  for (std::int64_t u = 0; u < options_.users; ++u) {
    users_[static_cast<std::size_t>(u)].rng =
        Rng(options_.seed, substream(0x10adULL, static_cast<std::uint64_t>(u)));
  }
}

Request LoadGen::make_request(std::int64_t user) {
  User& usr = users_[static_cast<std::size_t>(user)];
  Request r;
  r.id = static_cast<std::uint64_t>(user * options_.requests_per_user +
                                    usr.sent + 1);
  const std::int64_t plen =
      options_.prompt_min +
      static_cast<std::int64_t>(usr.rng.next_below(static_cast<std::uint64_t>(
          options_.prompt_max - options_.prompt_min + 1)));
  r.prompt.resize(static_cast<std::size_t>(plen));
  for (auto& tok : r.prompt) {
    tok = static_cast<std::int32_t>(
        usr.rng.next_below(static_cast<std::uint64_t>(options_.vocab)));
  }
  std::int64_t max_new =
      options_.max_new_min +
      static_cast<std::int64_t>(usr.rng.next_below(static_cast<std::uint64_t>(
          options_.max_new_max - options_.max_new_min + 1)));
  // Keep prompt + generation inside the trained window so the engine's
  // token stream is directly comparable to the full-forward oracle.
  max_new = std::max<std::int64_t>(
      1, std::min(max_new, options_.window - plen));
  r.options.max_new_tokens = max_new;
  if (usr.rng.next_bernoulli(options_.sampled_fraction)) {
    r.options.greedy = false;
    r.options.temperature = options_.temperature;
    r.options.top_k = options_.top_k;
    r.options.seed = usr.rng.next_u64();
  }
  return r;
}

void LoadGen::tick(std::int64_t step, ServeEngine& engine) {
  for (std::int64_t u = 0; u < options_.users; ++u) {
    User& usr = users_[static_cast<std::size_t>(u)];
    if (usr.busy || usr.sent >= options_.requests_per_user ||
        step < usr.due_step) {
      continue;
    }
    Request r = make_request(u);
    const std::uint64_t id = r.id;
    requests_.emplace(id, r);
    usr.busy = true;
    ++usr.sent;
    ++submitted_;
    ++outstanding_;
    engine.submit(std::move(r));
  }
}

void LoadGen::on_finished(std::span<const FinishedRequest> done,
                          std::int64_t step) {
  for (const FinishedRequest& fin : done) {
    const std::int64_t u =
        static_cast<std::int64_t>(fin.id - 1) / options_.requests_per_user;
    PTDP_CHECK(u >= 0 && u < options_.users) << "foreign request id " << fin.id;
    User& usr = users_[static_cast<std::size_t>(u)];
    PTDP_CHECK(usr.busy) << "finish for a request user " << u << " never sent";
    usr.busy = false;
    usr.due_step =
        step + 1 +
        (options_.think_steps_max > 0
             ? static_cast<std::int64_t>(usr.rng.next_below(
                   static_cast<std::uint64_t>(options_.think_steps_max + 1)))
             : 0);
    --outstanding_;
    finished_.push_back(fin);
  }
}

bool LoadGen::done() const {
  if (outstanding_ > 0) return false;
  return std::all_of(users_.begin(), users_.end(), [&](const User& u) {
    return u.sent >= options_.requests_per_user;
  });
}

const Request& LoadGen::request(std::uint64_t id) const {
  auto it = requests_.find(id);
  PTDP_CHECK(it != requests_.end()) << "unknown request " << id;
  return it->second;
}

}  // namespace ptdp::serve
