#include "ptdp/serve/engine.hpp"

#include <algorithm>

#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"
#include "ptdp/runtime/stopwatch.hpp"

namespace ptdp::serve {

ServeEngine::ServeEngine(model::GptStage& stage, EngineOptions options)
    : stage_(stage),
      options_(options),
      kv_({stage.config().num_layers,
           stage.kv_heads_local() * stage.kv_head_dim(), options.block_tokens,
           options.capacity_blocks, options.record_metrics}),
      epoch_ns_(steady_now_ns()) {
  PTDP_CHECK(stage.spec().has_embedding && stage.spec().has_head)
      << "serving needs the whole model on one stage";
  PTDP_CHECK_EQ(stage.config().dropout, 0.0f)
      << "build the serving model with dropout = 0";
  PTDP_CHECK_GT(options_.max_batch_tokens, 0);
  PTDP_CHECK_GT(options_.prefill_chunk, 0);
  PTDP_CHECK_GT(options_.max_running, 0);
}

double ServeEngine::now_ms() const {
  return static_cast<double>(steady_now_ns() - epoch_ns_) / 1e6;
}

ServeEngine::Seq& ServeEngine::seq(std::uint64_t id) {
  auto it = seqs_.find(id);
  PTDP_CHECK(it != seqs_.end()) << "unknown sequence " << id;
  return it->second;
}

void ServeEngine::insert_by_ordinal(
    std::vector<std::uint64_t>& queue,
    const std::unordered_map<std::uint64_t, Seq>& seqs, std::uint64_t id) {
  const std::int64_t ord = seqs.at(id).ordinal;
  auto it = std::lower_bound(queue.begin(), queue.end(), ord,
                             [&](std::uint64_t q, std::int64_t o) {
                               return seqs.at(q).ordinal < o;
                             });
  queue.insert(it, id);
}

void ServeEngine::submit(Request request) {
  PTDP_CHECK(!request.prompt.empty()) << "empty prompt";
  PTDP_CHECK(seqs_.find(request.id) == seqs_.end())
      << "duplicate request id " << request.id;
  const std::int64_t window = stage_.config().seq;
  const std::int64_t prompt_len =
      static_cast<std::int64_t>(request.prompt.size());
  PTDP_CHECK_LE(prompt_len, window)
      << "prompt longer than the model's trained window";

  Seq s;
  const std::int64_t max_new =
      std::min<std::int64_t>(request.options.max_new_tokens,
                             window - prompt_len);
  s.max_context = prompt_len + std::max<std::int64_t>(max_new, 0);
  s.context = request.prompt;
  s.rng = Rng(request.options.seed, substream(0x9E4EA7E));
  s.ordinal = next_ordinal_++;
  s.submit_step = stats_.steps;
  s.submit_ms = now_ms();
  s.req = std::move(request);
  ++stats_.submitted;

  if (max_new <= 0) {
    // Window already full: nothing to generate. Retire without ever
    // touching the scheduler (step() drains pending_finished_).
    FinishedRequest fin;
    fin.id = s.req.id;
    fin.submit_step = fin.finish_step = s.submit_step;
    fin.submit_ms = fin.finish_ms = s.submit_ms;
    pending_finished_.push_back(std::move(fin));
    ++stats_.completed;
    return;
  }

  // The request must be servable alone: full prompt during prefill, and
  // max_context - 1 cached positions on the final decode step. Failing
  // this would spin forever self-preempting.
  const std::int64_t solo =
      std::max<std::int64_t>(prompt_len, s.max_context - 1);
  PTDP_CHECK_LE(kv_.blocks_for(solo), options_.capacity_blocks)
      << "request " << s.req.id << " cannot fit the KV budget even alone";

  const std::uint64_t id = s.req.id;
  seqs_.emplace(id, std::move(s));
  insert_by_ordinal(waiting_, seqs_, id);
}

void ServeEngine::preempt(std::uint64_t id) {
  Seq& s = seq(id);
  kv_.drop(id);
  s.cached = 0;  // re-prefills prompt + generated on re-admission
  ++s.preemptions;
  ++stats_.preemptions;
  running_.erase(std::find(running_.begin(), running_.end(), id));
  insert_by_ordinal(waiting_, seqs_, id);
  if (options_.record_metrics && obs::metrics_on()) {
    obs::MetricsRegistry::instance().counter("serve.preemptions").add();
  }
}

bool ServeEngine::reserve_with_eviction(
    std::uint64_t id, std::int64_t len,
    const std::unordered_set<std::uint64_t>& pinned) {
  const std::int64_t my_ord = seq(id).ordinal;
  while (!kv_.try_reserve(id, len)) {
    // Evict the youngest running sequence that is strictly younger than the
    // beneficiary and not already committed to this step's batch. Never
    // touching older sequences is what keeps the oldest request always
    // progressing (no starvation).
    std::uint64_t victim = 0;
    std::int64_t victim_ord = my_ord;
    for (std::uint64_t r : running_) {
      const Seq& cand = seqs_.at(r);
      if (cand.ordinal > victim_ord && pinned.find(r) == pinned.end()) {
        victim = r;
        victim_ord = cand.ordinal;
      }
    }
    if (victim_ord == my_ord) return false;  // nobody younger to evict
    preempt(victim);
  }
  return true;
}

void ServeEngine::finish(std::uint64_t id, std::vector<FinishedRequest>& done) {
  Seq& s = seq(id);
  kv_.drop(id);
  FinishedRequest fin;
  fin.id = id;
  fin.tokens.assign(s.context.begin() +
                        static_cast<std::ptrdiff_t>(s.req.prompt.size()),
                    s.context.end());
  fin.submit_step = s.submit_step;
  fin.finish_step = stats_.steps;
  fin.preemptions = s.preemptions;
  fin.submit_ms = s.submit_ms;
  fin.first_token_ms = s.first_token_ms;
  fin.finish_ms = now_ms();
  fin.token_ms = std::move(s.token_ms);
  ++stats_.completed;
  if (options_.record_metrics && obs::metrics_on()) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("serve.requests_completed").add();
    reg.counter("serve.tokens_generated").add(s.generated);
    auto bounds = obs::default_ms_bounds();
    reg.histogram("serve.ttft_ms", bounds)
        .observe(fin.first_token_ms - fin.submit_ms);
    reg.histogram("serve.e2e_ms", bounds).observe(fin.finish_ms - fin.submit_ms);
    auto& tbt = reg.histogram("serve.tbt_ms", bounds);
    for (std::size_t i = 1; i < fin.token_ms.size(); ++i) {
      tbt.observe(fin.token_ms[i] - fin.token_ms[i - 1]);
    }
  }
  if (options_.record_metrics && obs::spans_on()) {
    obs::instant("serve.request_done", obs::Cat::kEngine,
                 {{"id", static_cast<std::int64_t>(id)},
                  {"tokens", s.generated},
                  {"preemptions", s.preemptions},
                  {"steps", fin.finish_step - fin.submit_step}});
  }
  running_.erase(std::find(running_.begin(), running_.end(), id));
  seqs_.erase(id);
  done.push_back(std::move(fin));
}

std::vector<FinishedRequest> ServeEngine::step() {
  std::vector<FinishedRequest> done;
  if (!pending_finished_.empty()) {
    done = std::move(pending_finished_);
    pending_finished_.clear();
  }
  if (waiting_.empty() && running_.empty()) return done;
  ++stats_.steps;

  struct Entry {
    std::uint64_t id;
    std::int64_t pos;
    std::int64_t len;
  };
  std::vector<Entry> batch;
  std::unordered_set<std::uint64_t> pinned;
  std::int64_t budget = options_.max_batch_tokens;

  // 1. Decode: every sequence whose whole context except the newest token
  // is cached advances one token, oldest first. Reservation may evict
  // younger runners; a sequence that cannot reserve even after evictions
  // skips this round (its blocks stay, it just doesn't batch).
  std::vector<std::uint64_t> round(running_);
  for (std::uint64_t id : round) {
    if (budget < 1) break;
    if (std::find(running_.begin(), running_.end(), id) == running_.end()) {
      continue;  // evicted by an older sequence earlier in this pass
    }
    Seq& s = seq(id);
    const std::int64_t left =
        static_cast<std::int64_t>(s.context.size()) - s.cached;
    if (s.generated == 0 || left != 1) continue;  // still prefilling
    if (!reserve_with_eviction(id, s.cached + 1, pinned)) continue;
    batch.push_back({id, s.cached, 1});
    pinned.insert(id);
    budget -= 1;
    ++stats_.decode_tokens;
  }

  // 2. Prefill: running sequences still materializing their context take a
  // chunk each. Decode keeps KV priority through pass order (decode
  // sequences are already pinned), but prefill must also be able to evict
  // strictly-younger runners: with try_reserve alone, "every runner needs
  // one more block and free = 0" is a livelock nobody can break.
  round.assign(running_.begin(), running_.end());
  for (std::uint64_t id : round) {
    if (budget <= 0) break;
    if (std::find(running_.begin(), running_.end(), id) == running_.end()) {
      continue;  // evicted earlier in this pass
    }
    Seq& s = seq(id);
    const std::int64_t left =
        static_cast<std::int64_t>(s.context.size()) - s.cached;
    if (left <= 0 || pinned.find(id) != pinned.end()) continue;
    const std::int64_t chunk =
        std::min({left, options_.prefill_chunk, budget});
    if (!reserve_with_eviction(id, s.cached + chunk, pinned)) continue;
    batch.push_back({id, s.cached, chunk});
    pinned.insert(id);
    budget -= chunk;
    stats_.prefill_tokens += chunk;
  }

  // 3. Admission: pull from the waiting queue in arrival order while KV and
  // batch budget allow. A re-admitted sequence enters here too, restarting
  // its prefill over prompt + previously-generated tokens.
  while (!waiting_.empty() && budget > 0 &&
         static_cast<std::int64_t>(running_.size()) < options_.max_running) {
    const std::uint64_t id = waiting_.front();
    Seq& s = seq(id);
    const std::int64_t left =
        static_cast<std::int64_t>(s.context.size()) - s.cached;
    const std::int64_t chunk =
        std::min({left, options_.prefill_chunk, budget});
    if (!kv_.try_reserve(id, s.cached + chunk)) break;
    waiting_.erase(waiting_.begin());
    insert_by_ordinal(running_, seqs_, id);
    batch.push_back({id, s.cached, chunk});
    pinned.insert(id);
    budget -= chunk;
    stats_.prefill_tokens += chunk;
    stats_.peak_running = std::max(
        stats_.peak_running, static_cast<std::int64_t>(running_.size()));
  }

  if (batch.empty()) return done;  // all runners blocked on KV this round

  std::vector<model::DecodeSeq> dseqs;
  std::vector<std::int32_t> tokens;
  dseqs.reserve(batch.size());
  for (const Entry& e : batch) {
    const Seq& s = seqs_.at(e.id);
    dseqs.push_back({e.id, e.pos, e.len});
    for (std::int64_t i = 0; i < e.len; ++i) {
      tokens.push_back(s.context[static_cast<std::size_t>(e.pos + i)]);
    }
  }
  stats_.peak_batch_tokens =
      std::max(stats_.peak_batch_tokens,
               static_cast<std::int64_t>(tokens.size()));

  tensor::Tensor logits;
  if (options_.record_metrics) {
    obs::Span span("serve.step", obs::Cat::kEngine,
                   {{"seqs", static_cast<std::int64_t>(batch.size())},
                    {"tokens", static_cast<std::int64_t>(tokens.size())}});
    logits = stage_.decode(dseqs, tokens, kv_);
  } else {
    logits = stage_.decode(dseqs, tokens, kv_);
  }

  // Sample for every sequence whose context is now fully materialized (the
  // batch row holds its last position's logits). Mid-prefill entries skip.
  const std::int64_t vocab = stage_.config().vocab;
  const double t = now_ms();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Entry& e = batch[i];
    Seq& s = seq(e.id);
    s.cached = e.pos + e.len;
    if (s.cached != static_cast<std::int64_t>(s.context.size())) continue;
    auto row = logits.data().subspan(i * static_cast<std::size_t>(vocab),
                                     static_cast<std::size_t>(vocab));
    const std::int32_t tok = model::sample_token(row, s.req.options, s.rng);
    s.context.push_back(tok);
    ++s.generated;
    ++stats_.generated_tokens;
    if (s.generated == 1) s.first_token_ms = t;
    s.token_ms.push_back(t);
    if (s.generated >= s.max_context -
                           static_cast<std::int64_t>(s.req.prompt.size())) {
      finish(e.id, done);
    }
  }
  return done;
}

}  // namespace ptdp::serve
