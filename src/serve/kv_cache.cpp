#include "ptdp/serve/kv_cache.hpp"

#include <algorithm>

#include "ptdp/obs/metrics.hpp"

namespace ptdp::serve {

using tensor::Tensor;

BlockAllocator::BlockAllocator(BlockAllocatorOptions options)
    : options_(options) {
  PTDP_CHECK_GT(options_.block_floats, 0);
  PTDP_CHECK_GT(options_.capacity_blocks, 0);
  blocks_.reserve(static_cast<std::size_t>(options_.capacity_blocks));
}

BlockAllocator::~BlockAllocator() {
  for (mem::Block& b : blocks_) {
    mem::account_adjust(-options_.block_floats);
    mem::release(b.data, b.capacity);
  }
}

std::int32_t BlockAllocator::allocate() {
  std::int32_t id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    if (options_.record_metrics && obs::metrics_on()) {
      obs::MetricsRegistry::instance().counter("serve.kv.block_reuses").add();
    }
  } else {
    if (static_cast<std::int64_t>(blocks_.size()) >= options_.capacity_blocks) {
      return -1;
    }
    id = static_cast<std::int32_t>(blocks_.size());
    blocks_.push_back(
        mem::acquire(static_cast<std::size_t>(options_.block_floats)));
    ++pool_acquires_;
    if (options_.record_metrics && obs::metrics_on()) {
      obs::MetricsRegistry::instance().counter("serve.kv.pool_acquires").add();
    }
  }
  ++live_blocks_;
  peak_live_blocks_ = std::max(peak_live_blocks_, live_blocks_);
  publish_gauges();
  return id;
}

void BlockAllocator::free(std::int32_t block) {
  PTDP_CHECK(block >= 0 && block < static_cast<std::int32_t>(blocks_.size()))
      << "free of unknown block " << block;
  free_list_.push_back(block);
  --live_blocks_;
  PTDP_CHECK_GE(live_blocks_, 0) << "double free";
  publish_gauges();
}

float* BlockAllocator::data(std::int32_t block) {
  PTDP_CHECK(block >= 0 && block < static_cast<std::int32_t>(blocks_.size()));
  return blocks_[static_cast<std::size_t>(block)].data;
}

const float* BlockAllocator::data(std::int32_t block) const {
  PTDP_CHECK(block >= 0 && block < static_cast<std::int32_t>(blocks_.size()));
  return blocks_[static_cast<std::size_t>(block)].data;
}

std::int64_t BlockAllocator::free_blocks() const {
  return options_.capacity_blocks - live_blocks_;
}

void BlockAllocator::publish_gauges() const {
  if (!options_.record_metrics || !obs::metrics_on()) return;
  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("serve.kv.live_bytes").set(static_cast<double>(live_bytes()));
  reg.gauge("serve.kv.peak_bytes").set(static_cast<double>(peak_bytes()));
}

PagedKvCache::PagedKvCache(KvCacheOptions options)
    : options_(options),
      allocator_({options.block_tokens * options.num_layers * 2 *
                      options.hidden_local,
                  options.capacity_blocks, options.record_metrics}) {
  PTDP_CHECK_GT(options_.num_layers, 0);
  PTDP_CHECK_GT(options_.hidden_local, 0);
  PTDP_CHECK_GT(options_.block_tokens, 0);
}

std::int64_t PagedKvCache::blocks_for(std::int64_t len) const {
  return (len + options_.block_tokens - 1) / options_.block_tokens;
}

bool PagedKvCache::try_reserve(std::uint64_t seq, std::int64_t len) {
  auto& table = tables_[seq];
  const std::int64_t need =
      blocks_for(len) - static_cast<std::int64_t>(table.size());
  if (need <= 0) return true;
  if (need > allocator_.free_blocks()) return false;
  for (std::int64_t i = 0; i < need; ++i) {
    const std::int32_t id = allocator_.allocate();
    PTDP_CHECK_GE(id, 0);  // guarded by the free-count check above
    table.push_back(id);
  }
  return true;
}

std::int64_t PagedKvCache::seq_blocks(std::uint64_t seq) const {
  auto it = tables_.find(seq);
  return it == tables_.end() ? 0 : static_cast<std::int64_t>(it->second.size());
}

std::int64_t PagedKvCache::reserved_tokens(std::uint64_t seq) const {
  return seq_blocks(seq) * options_.block_tokens;
}

std::int64_t PagedKvCache::total_table_blocks() const {
  std::int64_t n = 0;
  for (const auto& [id, table] : tables_) {
    n += static_cast<std::int64_t>(table.size());
  }
  return n;
}

void PagedKvCache::write(std::uint64_t seq, std::int64_t layer, std::int64_t pos,
                         const Tensor& k2d, const Tensor& v2d) {
  PTDP_CHECK_EQ(k2d.ndim(), 2);
  PTDP_CHECK(k2d.same_shape(v2d));
  const std::int64_t c = k2d.dim(0);
  const std::int64_t hl = k2d.dim(1);
  PTDP_CHECK_EQ(hl, options_.hidden_local);
  PTDP_CHECK(layer >= 0 && layer < options_.num_layers);
  auto it = tables_.find(seq);
  PTDP_CHECK(it != tables_.end()) << "write before try_reserve, seq " << seq;
  const auto& table = it->second;
  PTDP_CHECK_LE(pos + c, static_cast<std::int64_t>(table.size()) *
                             options_.block_tokens)
      << "write past the reserved block table";
  auto k = k2d.data();
  auto v = v2d.data();
  for (std::int64_t i = 0; i < c; ++i) {
    const std::int64_t p = pos + i;
    float* block =
        allocator_.data(table[static_cast<std::size_t>(p / options_.block_tokens)]);
    float* slot = block + slot_offset(p % options_.block_tokens, layer, 0);
    std::copy_n(k.data() + i * hl, static_cast<std::size_t>(hl), slot);
    std::copy_n(v.data() + i * hl, static_cast<std::size_t>(hl), slot + hl);
  }
}

void PagedKvCache::gather(std::uint64_t seq, std::int64_t layer, std::int64_t len,
                          Tensor& k, Tensor& v) const {
  PTDP_CHECK_EQ(k.ndim(), 3);
  PTDP_CHECK(k.same_shape(v));
  const std::int64_t heads = k.dim(0);
  const std::int64_t dk = k.dim(2);
  PTDP_CHECK_EQ(k.dim(1), len);
  PTDP_CHECK_EQ(heads * dk, options_.hidden_local);
  auto it = tables_.find(seq);
  PTDP_CHECK(it != tables_.end()) << "unknown sequence " << seq;
  const auto& table = it->second;
  PTDP_CHECK_LE(len, static_cast<std::int64_t>(table.size()) *
                         options_.block_tokens);
  auto dk_out = k.data();
  auto dv_out = v.data();
  for (std::int64_t p = 0; p < len; ++p) {
    const float* block = allocator_.data(
        table[static_cast<std::size_t>(p / options_.block_tokens)]);
    const float* slot = block + slot_offset(p % options_.block_tokens, layer, 0);
    const std::int64_t hl = options_.hidden_local;
    for (std::int64_t a = 0; a < heads; ++a) {
      std::copy_n(slot + a * dk, static_cast<std::size_t>(dk),
                  dk_out.data() + (a * len + p) * dk);
      std::copy_n(slot + hl + a * dk, static_cast<std::size_t>(dk),
                  dv_out.data() + (a * len + p) * dk);
    }
  }
}

void PagedKvCache::drop(std::uint64_t seq) {
  auto it = tables_.find(seq);
  if (it == tables_.end()) return;
  for (std::int32_t id : it->second) allocator_.free(id);
  tables_.erase(it);
}

}  // namespace ptdp::serve
