#include "ptdp/graph/ir.hpp"

#include <atomic>
#include <cstdlib>

namespace ptdp::graph {

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kView2D: return "graph.view2d";
    case OpKind::kView3D: return "graph.view3d";
    case OpKind::kAttnSplitHeads: return "graph.attn_split_heads";
    case OpKind::kAttnMergeHeads: return "graph.attn_merge_heads";
    case OpKind::kAttnSplitGradHeads: return "graph.attn_split_grad_heads";
    case OpKind::kAttnMergeQkvGrad: return "graph.attn_merge_qkv_grad";
    case OpKind::kLinearFwd: return "graph.linear_fwd";
    case OpKind::kLinearBwd: return "graph.linear_bwd";
    case OpKind::kAttnProbMask: return "graph.attn_prob_mask";
    case OpKind::kLayerNorm: return "graph.layernorm";
    case OpKind::kLayerNormBwd: return "graph.layernorm_bwd";
    case OpKind::kAddBias: return "graph.add_bias";
    case OpKind::kGelu: return "graph.gelu";
    case OpKind::kGeluBwd: return "graph.gelu_bwd";
    case OpKind::kDropout: return "graph.dropout";
    case OpKind::kDropoutBwd: return "graph.dropout_bwd";
    case OpKind::kAdd: return "graph.add";
    case OpKind::kMul: return "graph.mul";
    case OpKind::kScale: return "graph.scale";
    case OpKind::kMaskFill: return "graph.mask_fill";
    case OpKind::kSoftmax: return "graph.softmax";
    case OpKind::kSoftmaxBwd: return "graph.softmax_bwd";
    case OpKind::kBmm: return "graph.bmm";
    case OpKind::kBmmNT: return "graph.bmm_nt";
    case OpKind::kBmmTN: return "graph.bmm_tn";
    case OpKind::kBiasGradAccum: return "graph.bias_grad_accum";
    case OpKind::kFusedBiasGelu: return "graph.fused_bias_gelu";
    case OpKind::kFusedBiasGeluBwd: return "graph.fused_bias_gelu_bwd";
    case OpKind::kFusedBiasDropoutAdd: return "graph.fused_bias_dropout_add";
    case OpKind::kScaleCausalSoftmax: return "graph.scale_causal_softmax";
    case OpKind::kScaleMaskSoftmax: return "graph.scale_mask_softmax";
    case OpKind::kScaleSoftmaxBwd: return "graph.scale_softmax_bwd";
    case OpKind::kLinearFwdQuant: return "graph.linear_fwd_quant";
  }
  return "graph.unknown";
}

namespace {
std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("PTDP_GRAPH");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return flag;
}
}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

bool set_enabled(bool on) {
  return enabled_flag().exchange(on, std::memory_order_relaxed);
}

}  // namespace ptdp::graph
