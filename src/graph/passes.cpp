#include "ptdp/graph/passes.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "ptdp/runtime/check.hpp"

namespace ptdp::graph {

namespace {

/// Use counts per value across both graphs (params/modules not counted —
/// they live outside the value table).
std::vector<int> use_counts(const LayerPlan& plan) {
  std::vector<int> uses(plan.values.size(), 0);
  for (std::size_t u = 0; u < plan.unified_size(); ++u) {
    for (ValueId vid : plan.unified(u).in) ++uses[static_cast<std::size_t>(vid)];
  }
  return uses;
}

bool fusable_temp(const LayerPlan& plan, const std::vector<int>& uses,
                  ValueId vid) {
  const Value& v = plan.values[static_cast<std::size_t>(vid)];
  return !v.pinned && uses[static_cast<std::size_t>(vid)] == 1;
}

/// Replaces seg[first..first+count) with `repl`.
void splice(std::vector<Node>& seg, std::size_t first, std::size_t count,
            Node repl) {
  seg.erase(seg.begin() + static_cast<std::ptrdiff_t>(first),
            seg.begin() + static_cast<std::ptrdiff_t>(first + count));
  seg.insert(seg.begin() + static_cast<std::ptrdiff_t>(first), std::move(repl));
}

// add_bias [+ dropout] + add -> fused_bias_dropout_add. The fused kernel
// draws the same site-keyed RNG stream the standalone dropout draws, so the
// rewrite is exact. Backward is already unfused in eager form (dropout_bwd /
// bias_grad / add) and needs no pairing.
int fuse_bias_dropout_add(LayerPlan& plan) {
  int n = 0;
  for (std::size_t i = 0; i < plan.fwd.size(); ++i) {
    const Node& ab = plan.fwd[i];
    if (ab.kind != OpKind::kAddBias || ab.param < 0) continue;
    const std::vector<int> uses = use_counts(plan);
    const ValueId t = ab.out[0];
    if (!fusable_temp(plan, uses, t)) continue;
    std::size_t j = i + 1;
    ValueId chain = t;
    ValueId mask = kNoValue;
    if (j < plan.fwd.size() && plan.fwd[j].kind == OpKind::kDropout &&
        plan.fwd[j].in[0] == chain) {
      if (!fusable_temp(plan, uses, plan.fwd[j].out[0])) continue;
      chain = plan.fwd[j].out[0];
      mask = plan.fwd[j].out[1];
      ++j;
    }
    if (j >= plan.fwd.size() || plan.fwd[j].kind != OpKind::kAdd ||
        plan.fwd[j].in[0] != chain) {
      continue;
    }
    Node fused;
    fused.kind = OpKind::kFusedBiasDropoutAdd;
    fused.in = {ab.in[0], plan.fwd[j].in[1]};  // (x, residual)
    fused.out = {plan.fwd[j].out[0]};
    if (mask != kNoValue) fused.out.push_back(mask);
    fused.param = ab.param;
    fused.site = ab.site;
    splice(plan.fwd, i, j - i + 1, std::move(fused));
    ++n;
  }
  return n;
}

// add_bias + gelu -> fused_bias_gelu, jointly with the backward pair
// gelu_bwd + bias_grad_accum -> fused_bias_gelu_bwd (which re-materializes
// x + bias internally, so the pre-GeLU sum no longer needs to be saved).
int fuse_bias_gelu(LayerPlan& plan) {
  int n = 0;
  for (std::size_t i = 0; i + 1 < plan.fwd.size(); ++i) {
    const Node ab = plan.fwd[i];
    const Node ge = plan.fwd[i + 1];
    if (ab.kind != OpKind::kAddBias || ab.param < 0 ||
        ge.kind != OpKind::kGelu || ge.in[0] != ab.out[0]) {
      continue;
    }
    const ValueId t = ab.out[0];
    if (plan.values[static_cast<std::size_t>(t)].pinned) continue;
    // Find the backward pair consuming the same pre-GeLU sum.
    std::size_t bj = plan.bwd.size();
    for (std::size_t j = 0; j + 1 < plan.bwd.size(); ++j) {
      if (plan.bwd[j].kind == OpKind::kGeluBwd && plan.bwd[j].in[1] == t &&
          plan.bwd[j + 1].kind == OpKind::kBiasGradAccum &&
          plan.bwd[j + 1].param == ab.param &&
          plan.bwd[j + 1].in[0] == plan.bwd[j].out[0]) {
        bj = j;
        break;
      }
    }
    const std::vector<int> uses = use_counts(plan);
    const int expected = bj < plan.bwd.size() ? 2 : 1;  // gelu [+ gelu_bwd]
    if (uses[static_cast<std::size_t>(t)] != expected) continue;

    Node fused;
    fused.kind = OpKind::kFusedBiasGelu;
    fused.in = {ab.in[0]};
    fused.out = {ge.out[0]};
    fused.param = ab.param;
    splice(plan.fwd, i, 2, std::move(fused));
    if (bj < plan.bwd.size()) {
      Node fb;
      fb.kind = OpKind::kFusedBiasGeluBwd;
      fb.in = {plan.bwd[bj].in[0], ab.in[0]};  // (dy, pre-bias x) — x saved now
      fb.out = {plan.bwd[bj].out[0]};
      fb.param = ab.param;
      splice(plan.bwd, bj, 2, std::move(fb));
    }
    ++n;
  }
  return n;
}

// scale + mask_fill + softmax -> fused_scale_{causal,mask}_softmax.
int fuse_scale_softmax(LayerPlan& plan) {
  int n = 0;
  for (std::size_t i = 0; i + 2 < plan.fwd.size(); ++i) {
    const Node& sc = plan.fwd[i];
    const Node& mf = plan.fwd[i + 1];
    const Node& sm = plan.fwd[i + 2];
    if (sc.kind != OpKind::kScale || mf.kind != OpKind::kMaskFill ||
        sm.kind != OpKind::kSoftmax || mf.in[0] != sc.out[0] ||
        sm.in[0] != mf.out[0]) {
      continue;
    }
    const std::vector<int> uses = use_counts(plan);
    if (!fusable_temp(plan, uses, sc.out[0]) ||
        !fusable_temp(plan, uses, mf.out[0])) {
      continue;
    }
    Node fused;
    fused.kind = mf.causal ? OpKind::kScaleCausalSoftmax
                           : OpKind::kScaleMaskSoftmax;
    fused.in = {sc.in[0]};
    fused.out = {sm.out[0]};
    fused.scale = sc.scale;
    fused.causal = mf.causal;
    splice(plan.fwd, i, 3, std::move(fused));
    ++n;
  }
  return n;
}

// softmax_bwd + scale -> fused_scale_softmax_bwd.
int fuse_scale_softmax_bwd(LayerPlan& plan) {
  int n = 0;
  for (std::size_t i = 0; i + 1 < plan.bwd.size(); ++i) {
    const Node& sb = plan.bwd[i];
    const Node& sc = plan.bwd[i + 1];
    if (sb.kind != OpKind::kSoftmaxBwd || sc.kind != OpKind::kScale ||
        sc.in[0] != sb.out[0]) {
      continue;
    }
    const std::vector<int> uses = use_counts(plan);
    if (!fusable_temp(plan, uses, sb.out[0])) continue;
    Node fused;
    fused.kind = OpKind::kScaleSoftmaxBwd;
    fused.in = {sb.in[0], sb.in[1]};
    fused.out = {sc.out[0]};
    fused.scale = sc.scale;
    splice(plan.bwd, i, 2, std::move(fused));
    ++n;
  }
  return n;
}

const char* dtype_json(tensor::DType d) {
  return d == tensor::DType::kBf16 ? "bf16" : "f32";
}

void dump_nodes_json(const LayerPlan& plan, const std::vector<Node>& seg,
                     std::FILE* out) {
  std::fputc('[', out);
  for (std::size_t i = 0; i < seg.size(); ++i) {
    const Node& n = seg[i];
    std::fprintf(out, "%s\n    {\"op\": \"%s\", \"in\": [", i ? "," : "",
                 op_name(n.kind));
    for (std::size_t j = 0; j < n.in.size(); ++j) {
      std::fprintf(out, "%s%d", j ? ", " : "", n.in[j]);
    }
    std::fputs("], \"out\": [", out);
    for (std::size_t j = 0; j < n.out.size(); ++j) {
      std::fprintf(out, "%s%d", j ? ", " : "", n.out[j]);
    }
    std::fputc(']', out);
    if (n.linear >= 0) std::fprintf(out, ", \"linear\": %d", n.linear);
    if (n.param >= 0) std::fprintf(out, ", \"param\": %d", n.param);
    if (n.param2 >= 0) std::fprintf(out, ", \"param2\": %d", n.param2);
    if (n.kind == OpKind::kDropout || n.kind == OpKind::kFusedBiasDropoutAdd ||
        n.kind == OpKind::kAttnProbMask) {
      std::fprintf(out, ", \"site\": %d", static_cast<int>(n.site));
    }
    if (n.scale != 0.0f) std::fprintf(out, ", \"scale\": %.9g", n.scale);
    if (n.quant >= 0) {
      std::fprintf(out, ", \"quant\": \"%s\"",
                   tensor::quant_kind_name(static_cast<tensor::QuantKind>(n.quant)));
    }
    std::fputc('}', out);
  }
  std::fputs("\n  ]", out);
}

}  // namespace

int fuse_operators(LayerPlan& plan) {
  int n = 0;
  n += fuse_scale_softmax(plan);
  n += fuse_scale_softmax_bwd(plan);
  n += fuse_bias_gelu(plan);
  n += fuse_bias_dropout_add(plan);
  plan.fused = true;
  plan.num_fusions += n;
  return n;
}

void propagate_dtypes(LayerPlan& plan, const model::GptConfig& config) {
  // §13: every kernel here is f32-compute; the only low-precision values a
  // layer plan holds are the GEMM inputs the linear layers stash for their
  // backward, which are narrowed to the weight's storage dtype.
  if (config.dtype != tensor::DType::kBf16) return;
  for (std::size_t u = 0; u < plan.unified_size(); ++u) {
    const Node& node = plan.unified(u);
    if (node.kind != OpKind::kLinearFwd) continue;
    Value& cached = plan.values[static_cast<std::size_t>(node.out[1])];
    if (cached.dtype == tensor::DType::kF32) {
      cached.dtype = tensor::DType::kBf16;
      cached.ref_bytes /= 2;
    }
  }
}

int select_kernels(LayerPlan& plan, const QuantPolicy& policy) {
  // Quantized weights are forward-only: refuse any plan that still carries
  // a backward graph rather than silently producing an untrainable plan.
  if (!plan.bwd.empty()) return -1;
  int n = 0;
  for (Node& node : plan.fwd) {
    if (node.kind != OpKind::kLinearFwd) continue;
    if (node.linear < 0 || !policy.slots[node.linear]) continue;
    node.kind = OpKind::kLinearFwdQuant;
    node.quant = static_cast<std::int8_t>(policy.kind);
    ++n;
  }
  return n;
}

void analyze_lifetimes(LayerPlan& plan) {
  for (Value& v : plan.values) {
    v.def = -1;
    v.last_use = -1;
    v.saved = false;
  }
  const std::int32_t fwd_size = static_cast<std::int32_t>(plan.fwd.size());
  for (std::size_t u = 0; u < plan.unified_size(); ++u) {
    const Node& node = plan.unified(u);
    const auto iu = static_cast<std::int32_t>(u);
    for (ValueId vid : node.out) {
      Value& v = plan.values[static_cast<std::size_t>(vid)];
      PTDP_CHECK(v.def == -1) << "value " << v.name << " redefined";
      v.def = iu;
    }
    for (ValueId vid : node.in) {
      plan.values[static_cast<std::size_t>(vid)].last_use = iu;
    }
  }
  for (Value& v : plan.values) {
    v.saved = v.def >= 0 && v.def < fwd_size && v.last_use >= fwd_size;
  }
}

void plan_buffers(LayerPlan& plan) {
  for (Value& v : plan.values) v.slot = -1;
  std::vector<std::pair<std::int64_t, tensor::DType>> slots;
  std::map<std::pair<std::int64_t, int>, std::vector<std::int32_t>> freelist;
  std::int64_t live = 0;
  BufferPlanStats stats;
  for (std::size_t u = 0; u < plan.unified_size(); ++u) {
    const Node& node = plan.unified(u);
    const auto iu = static_cast<std::int32_t>(u);
    for (ValueId vid : node.out) {
      Value& v = plan.values[static_cast<std::size_t>(vid)];
      if (v.ref_bytes == 0) continue;  // alias/degenerate: no storage planned
      live += v.ref_bytes;
      stats.peak_bytes = std::max(stats.peak_bytes, live);
      const auto key = std::make_pair(v.ref_bytes, static_cast<int>(v.dtype));
      auto it = freelist.find(key);
      if (!v.pinned && it != freelist.end() && !it->second.empty()) {
        v.slot = it->second.back();
        it->second.pop_back();
      } else {
        v.slot = static_cast<std::int32_t>(slots.size());
        slots.emplace_back(v.ref_bytes, v.dtype);
      }
    }
    for (ValueId vid : node.in) {
      Value& v = plan.values[static_cast<std::size_t>(vid)];
      if (v.ref_bytes == 0 || v.def < 0 || v.last_use != iu) continue;
      live -= v.ref_bytes;
      if (v.slot >= 0 && !v.pinned) {
        freelist[{v.ref_bytes, static_cast<int>(v.dtype)}].push_back(v.slot);
      }
    }
  }
  stats.num_slots = static_cast<std::int32_t>(slots.size());
  for (const auto& [bytes, dtype] : slots) stats.slot_bytes += bytes;
  for (const Value& v : plan.values) {
    if (v.def >= 0) stats.total_value_bytes += v.ref_bytes;
    if (v.saved) stats.saved_bytes += v.ref_bytes;
  }
  plan.buffer = stats;
}

void dump_plan_json(const LayerPlan& plan, std::int64_t layer_idx,
                    std::FILE* out) {
  std::fprintf(out,
               "{\n  \"layer\": %lld, \"with_dropout\": %s, \"fused\": %s, "
               "\"causal\": %s, \"num_fusions\": %d,\n",
               static_cast<long long>(layer_idx),
               plan.with_dropout ? "true" : "false",
               plan.fused ? "true" : "false", plan.causal ? "true" : "false",
               plan.num_fusions);
  std::fprintf(
      out,
      "  \"buffer\": {\"num_slots\": %d, \"slot_bytes\": %lld, "
      "\"total_value_bytes\": %lld, \"peak_bytes\": %lld, \"saved_bytes\": "
      "%lld},\n",
      plan.buffer.num_slots, static_cast<long long>(plan.buffer.slot_bytes),
      static_cast<long long>(plan.buffer.total_value_bytes),
      static_cast<long long>(plan.buffer.peak_bytes),
      static_cast<long long>(plan.buffer.saved_bytes));
  std::fputs("  \"values\": [", out);
  bool first = true;
  for (std::size_t i = 0; i < plan.values.size(); ++i) {
    const Value& v = plan.values[i];
    if (v.def < 0 && v.last_use < 0 &&
        static_cast<ValueId>(i) != plan.input &&
        static_cast<ValueId>(i) != plan.grad_in) {
      continue;  // dead (fused away)
    }
    std::fprintf(out,
                 "%s\n    {\"id\": %zu, \"name\": \"%s\", \"shape\": \"%s\", "
                 "\"dtype\": \"%s\", \"ref_bytes\": %lld, \"def\": %d, "
                 "\"last_use\": %d, \"saved\": %s, \"slot\": %d}",
                 first ? "" : ",", i, v.name.c_str(), v.shape.c_str(),
                 dtype_json(v.dtype), static_cast<long long>(v.ref_bytes),
                 v.def, v.last_use, v.saved ? "true" : "false", v.slot);
    first = false;
  }
  std::fputs("\n  ],\n  \"forward\": ", out);
  dump_nodes_json(plan, plan.fwd, out);
  std::fputs(",\n  \"backward\": ", out);
  dump_nodes_json(plan, plan.bwd, out);
  std::fputs("\n}", out);
}

void dump_stage_plan_json(const StagePlan& plan, const model::GptConfig& config,
                          std::FILE* out) {
  std::fprintf(
      out,
      "{\n\"schema\": \"ptdp-plan-v1\",\n\"config\": {\"num_layers\": %lld, "
      "\"hidden\": %lld, \"heads\": %lld, \"seq\": %lld, \"vocab\": %lld, "
      "\"dropout\": %.9g, \"dtype\": \"%s\", \"causal\": %s},\n",
      static_cast<long long>(config.num_layers),
      static_cast<long long>(config.hidden),
      static_cast<long long>(config.heads), static_cast<long long>(config.seq),
      static_cast<long long>(config.vocab), config.dropout,
      dtype_json(config.dtype), config.causal ? "true" : "false");
  std::fprintf(out,
               "\"stage\": {\"layer_begin\": %lld, \"layer_end\": %lld, "
               "\"has_embedding\": %s, \"has_head\": %s, \"recompute\": %s},\n",
               static_cast<long long>(plan.layer_begin),
               static_cast<long long>(plan.layer_end),
               plan.has_embedding ? "true" : "false",
               plan.has_head ? "true" : "false",
               plan.recompute ? "true" : "false");
  std::fputs("\"layers\": [\n", out);
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    if (i) std::fputs(",\n", out);
    dump_plan_json(plan.layers[i], plan.layer_begin + static_cast<std::int64_t>(i),
                   out);
  }
  std::fputs("\n]\n}\n", out);
}

}  // namespace ptdp::graph
