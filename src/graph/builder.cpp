#include "ptdp/graph/builder.hpp"

#include <cmath>
#include <initializer_list>

#include "ptdp/graph/passes.hpp"
#include "ptdp/runtime/check.hpp"

namespace ptdp::graph {

namespace {

// Emits values/nodes into a LayerPlan under construction. All reference
// byte sizes are at microbatch b = 1 (see Value::ref_bytes).
class Emitter {
 public:
  Emitter(LayerPlan& plan, const model::GptConfig& config, std::int64_t tp)
      : plan_(plan), cfg_(config), tp_(tp) {}

  ValueId val(std::string name, std::string shape, std::int64_t ref_elems) {
    Value v;
    v.name = std::move(name);
    v.shape = std::move(shape);
    v.ref_bytes = ref_elems * 4;  // f32 until the dtype pass says otherwise
    plan_.values.push_back(std::move(v));
    return static_cast<ValueId>(plan_.values.size() - 1);
  }

  /// Zero-copy alias of another value (metadata view): plans no storage.
  ValueId alias(std::string name, std::string shape) {
    return val(std::move(name), std::move(shape) + " (view)", 0);
  }

  Node& node(std::vector<Node>& seg, OpKind kind,
             std::initializer_list<ValueId> in,
             std::initializer_list<ValueId> out) {
    Node n;
    n.kind = kind;
    n.in = in;
    n.out = out;
    seg.push_back(std::move(n));
    return seg.back();
  }

  std::int64_t s() const { return cfg_.seq; }
  std::int64_t h() const { return cfg_.hidden; }
  std::int64_t hl() const { return cfg_.hidden / tp_; }
  std::int64_t ffn_l() const { return cfg_.ffn_hidden() / tp_; }
  std::int64_t heads_l() const { return cfg_.heads / tp_; }

 private:
  LayerPlan& plan_;
  const model::GptConfig& cfg_;
  std::int64_t tp_;
};

}  // namespace

LayerPlan build_unfused_layer_plan(const model::GptConfig& config,
                                   bool with_dropout, std::int64_t tp_size) {
  PTDP_CHECK(tp_size >= 1 && config.heads % tp_size == 0);
  LayerPlan plan;
  plan.with_dropout = with_dropout;
  plan.causal = config.causal;
  Emitter e(plan, config, tp_size);
  const std::int64_t s = e.s(), h = e.h(), hl = e.hl(), ffn = e.ffn_l();
  const float smax_scale =
      1.0f / std::sqrt(static_cast<float>(config.head_dim()));
  const auto P = [](ParamSlot p) { return static_cast<std::int8_t>(p); };
  const auto L = [](LinearSlot l) { return static_cast<std::int8_t>(l); };

  // ---- values ----------------------------------------------------------------
  const ValueId x = e.val("x", "[s,b,h]", s * h);
  const ValueId x2d = e.alias("x2d", "[s*b,h]");
  const ValueId ln1_y = e.val("ln1.y", "[s*b,h]", s * h);
  const ValueId ln1_mean = e.val("ln1.mean", "[s*b]", s);
  const ValueId ln1_rstd = e.val("ln1.rstd", "[s*b]", s);
  const ValueId qkv_cin = e.val("attn.qkv.cached_input", "[s*b,h]", s * h);
  const ValueId qkv_out = e.val("attn.qkv.out", "[s*b,3h/t]", s * 3 * hl);
  const ValueId q = e.val("attn.q", "[b*a/t,s,dk]", s * hl);
  const ValueId k = e.val("attn.k", "[b*a/t,s,dk]", s * hl);
  const ValueId v = e.val("attn.v", "[b*a/t,s,dk]", s * hl);
  const std::int64_t score_elems = e.heads_l() * s * s;
  const ValueId scores = e.val("attn.scores", "[b*a/t,s,s]", score_elems);
  const ValueId scaled = e.val("attn.scaled", "[b*a/t,s,s]", score_elems);
  const ValueId masked = e.val("attn.masked", "[b*a/t,s,s]", score_elems);
  const ValueId probs = e.val("attn.probs", "[b*a/t,s,s]", score_elems);
  const ValueId pmask =
      e.val("attn.prob_mask", "[b*a/t,s,s]", with_dropout ? score_elems : 0);
  const ValueId probs_dropped =
      with_dropout ? e.val("attn.probs_dropped", "[b*a/t,s,s]", score_elems)
                   : probs;
  const ValueId ctx = e.val("attn.ctx", "[b*a/t,s,dk]", s * hl);
  const ValueId ctx2d = e.val("attn.ctx2d", "[s*b,h/t]", s * hl);
  const ValueId proj_cin = e.val("attn.proj.cached_input", "[s*b,h/t]", s * hl);
  const ValueId attn_out = e.val("attn.out", "[s*b,h]", s * h);
  const ValueId t1 = e.val("resid1.biased", "[s*b,h]", s * h);
  const ValueId d1 =
      with_dropout ? e.val("resid1.dropped", "[s*b,h]", s * h) : t1;
  const ValueId mask1 =
      e.val("resid1.mask", "[s*b,h]", with_dropout ? s * h : 0);
  const ValueId h1 = e.val("h1", "[s*b,h]", s * h);
  const ValueId ln2_y = e.val("ln2.y", "[s*b,h]", s * h);
  const ValueId ln2_mean = e.val("ln2.mean", "[s*b]", s);
  const ValueId ln2_rstd = e.val("ln2.rstd", "[s*b]", s);
  const ValueId fc1_cin = e.val("mlp.fc1.cached_input", "[s*b,h]", s * h);
  const ValueId fc1_out = e.val("mlp.fc1.out", "[s*b,4h/t]", s * ffn);
  const ValueId t_act = e.val("mlp.t_act", "[s*b,4h/t]", s * ffn);
  const ValueId act = e.val("mlp.act", "[s*b,4h/t]", s * ffn);
  const ValueId fc2_cin = e.val("mlp.fc2.cached_input", "[s*b,4h/t]", s * ffn);
  const ValueId fc2_out = e.val("mlp.fc2.out", "[s*b,h]", s * h);
  const ValueId t2 = e.val("resid2.biased", "[s*b,h]", s * h);
  const ValueId d2 =
      with_dropout ? e.val("resid2.dropped", "[s*b,h]", s * h) : t2;
  const ValueId mask2 =
      e.val("resid2.mask", "[s*b,h]", with_dropout ? s * h : 0);
  const ValueId y2d = e.val("y2d", "[s*b,h]", s * h);
  const ValueId y = e.alias("y", "[s,b,h]");

  const ValueId dy = e.val("dy", "[s,b,h]", s * h);
  const ValueId dy2d = e.alias("dy2d", "[s*b,h]");
  const ValueId db2 =
      with_dropout ? e.val("d_resid2.biased", "[s*b,h]", s * h) : dy2d;
  const ValueId dact = e.val("d_mlp.act", "[s*b,4h/t]", s * ffn);
  const ValueId dt_act = e.val("d_mlp.t_act", "[s*b,4h/t]", s * ffn);
  const ValueId dln2y = e.val("d_ln2.y", "[s*b,h]", s * h);
  const ValueId dln2x = e.val("d_ln2.x", "[s*b,h]", s * h);
  const ValueId dh1 = e.val("d_h1", "[s*b,h]", s * h);
  const ValueId db1 =
      with_dropout ? e.val("d_resid1.biased", "[s*b,h]", s * h) : dh1;
  const ValueId dctx2d = e.val("d_attn.ctx2d", "[s*b,h/t]", s * hl);
  const ValueId dctx = e.val("d_attn.ctx", "[b*a/t,s,dk]", s * hl);
  const ValueId dp_dropped =
      e.val("d_attn.probs_dropped", "[b*a/t,s,s]", score_elems);
  const ValueId dv = e.val("d_attn.v", "[b*a/t,s,dk]", s * hl);
  const ValueId dprobs =
      with_dropout ? e.val("d_attn.probs", "[b*a/t,s,s]", score_elems)
                   : dp_dropped;
  const ValueId dsm = e.val("d_attn.softmax", "[b*a/t,s,s]", score_elems);
  const ValueId dscores = e.val("d_attn.scores", "[b*a/t,s,s]", score_elems);
  const ValueId dq = e.val("d_attn.q", "[b*a/t,s,dk]", s * hl);
  const ValueId dk = e.val("d_attn.k", "[b*a/t,s,dk]", s * hl);
  const ValueId dqkv = e.val("d_attn.qkv", "[s*b,3h/t]", s * 3 * hl);
  const ValueId dln1y = e.val("d_ln1.y", "[s*b,h]", s * h);
  const ValueId dln1x = e.val("d_ln1.x", "[s*b,h]", s * h);
  const ValueId dx2d = e.val("dx2d", "[s*b,h]", s * h);
  const ValueId dx = e.alias("dx", "[s,b,h]");

  plan.input = x;
  plan.output = y;
  plan.grad_in = dy;
  plan.grad_out = dx;

  // ---- forward: the canonical unfused block ----------------------------------
  auto& F = plan.fwd;
  e.node(F, OpKind::kView2D, {x}, {x2d});
  {
    Node& n = e.node(F, OpKind::kLayerNorm, {x2d}, {ln1_y, ln1_mean, ln1_rstd});
    n.param = P(ParamSlot::kLn1Gamma);
    n.param2 = P(ParamSlot::kLn1Beta);
  }
  e.node(F, OpKind::kLinearFwd, {ln1_y}, {qkv_out, qkv_cin}).linear =
      L(LinearSlot::kQkv);
  e.node(F, OpKind::kAttnSplitHeads, {qkv_out}, {q, k, v});
  e.node(F, OpKind::kBmmNT, {q, k}, {scores});
  e.node(F, OpKind::kScale, {scores}, {scaled}).scale = smax_scale;
  e.node(F, OpKind::kMaskFill, {scaled}, {masked}).causal = config.causal;
  e.node(F, OpKind::kSoftmax, {masked}, {probs});
  if (with_dropout) {
    e.node(F, OpKind::kAttnProbMask, {}, {pmask});
    e.node(F, OpKind::kMul, {probs, pmask}, {probs_dropped});
  }
  e.node(F, OpKind::kBmm, {probs_dropped, v}, {ctx});
  e.node(F, OpKind::kAttnMergeHeads, {ctx}, {ctx2d});
  e.node(F, OpKind::kLinearFwd, {ctx2d}, {attn_out, proj_cin}).linear =
      L(LinearSlot::kProj);
  {
    // The residual-site tag rides on the head of the pattern so the fusion
    // pass can key the fused kernel's RNG stream in the p == 0 topology too.
    Node& n = e.node(F, OpKind::kAddBias, {attn_out}, {t1});
    n.param = P(ParamSlot::kProjBias);
    n.site = model::DropSite::kAttentionResidual;
  }
  if (with_dropout) {
    e.node(F, OpKind::kDropout, {t1}, {d1, mask1}).site =
        model::DropSite::kAttentionResidual;
  }
  e.node(F, OpKind::kAdd, {d1, x2d}, {h1});
  {
    Node& n = e.node(F, OpKind::kLayerNorm, {h1}, {ln2_y, ln2_mean, ln2_rstd});
    n.param = P(ParamSlot::kLn2Gamma);
    n.param2 = P(ParamSlot::kLn2Beta);
  }
  e.node(F, OpKind::kLinearFwd, {ln2_y}, {fc1_out, fc1_cin}).linear =
      L(LinearSlot::kFc1);
  e.node(F, OpKind::kAddBias, {fc1_out}, {t_act}).param = P(ParamSlot::kFc1Bias);
  e.node(F, OpKind::kGelu, {t_act}, {act});
  e.node(F, OpKind::kLinearFwd, {act}, {fc2_out, fc2_cin}).linear =
      L(LinearSlot::kFc2);
  {
    Node& n = e.node(F, OpKind::kAddBias, {fc2_out}, {t2});
    n.param = P(ParamSlot::kFc2Bias);
    n.site = model::DropSite::kMlpResidual;
  }
  if (with_dropout) {
    e.node(F, OpKind::kDropout, {t2}, {d2, mask2}).site =
        model::DropSite::kMlpResidual;
  }
  e.node(F, OpKind::kAdd, {d2, h1}, {y2d});
  e.node(F, OpKind::kView3D, {y2d}, {y});

  // ---- backward (mirrors the eager accumulation order exactly) ---------------
  auto& B = plan.bwd;
  e.node(B, OpKind::kView2D, {dy}, {dy2d});
  if (with_dropout) e.node(B, OpKind::kDropoutBwd, {dy2d, mask2}, {db2});
  e.node(B, OpKind::kBiasGradAccum, {db2}, {}).param = P(ParamSlot::kFc2Bias);
  e.node(B, OpKind::kLinearBwd, {db2, fc2_cin}, {dact}).linear =
      L(LinearSlot::kFc2);
  e.node(B, OpKind::kGeluBwd, {dact, t_act}, {dt_act});
  e.node(B, OpKind::kBiasGradAccum, {dt_act}, {}).param = P(ParamSlot::kFc1Bias);
  e.node(B, OpKind::kLinearBwd, {dt_act, fc1_cin}, {dln2y}).linear =
      L(LinearSlot::kFc1);
  {
    Node& n = e.node(B, OpKind::kLayerNormBwd,
                     {dln2y, h1, ln2_mean, ln2_rstd}, {dln2x});
    n.param = P(ParamSlot::kLn2Gamma);
    n.param2 = P(ParamSlot::kLn2Beta);
  }
  e.node(B, OpKind::kAdd, {dy2d, dln2x}, {dh1});
  if (with_dropout) e.node(B, OpKind::kDropoutBwd, {dh1, mask1}, {db1});
  e.node(B, OpKind::kBiasGradAccum, {db1}, {}).param = P(ParamSlot::kProjBias);
  e.node(B, OpKind::kLinearBwd, {db1, proj_cin}, {dctx2d}).linear =
      L(LinearSlot::kProj);
  e.node(B, OpKind::kAttnSplitGradHeads, {dctx2d}, {dctx});
  e.node(B, OpKind::kBmmNT, {dctx, v}, {dp_dropped});
  e.node(B, OpKind::kBmmTN, {probs_dropped, dctx}, {dv});
  if (with_dropout) e.node(B, OpKind::kMul, {dp_dropped, pmask}, {dprobs});
  e.node(B, OpKind::kSoftmaxBwd, {probs, dprobs}, {dsm});
  e.node(B, OpKind::kScale, {dsm}, {dscores}).scale = smax_scale;
  e.node(B, OpKind::kBmm, {dscores, k}, {dq});
  e.node(B, OpKind::kBmmTN, {dscores, q}, {dk});
  e.node(B, OpKind::kAttnMergeQkvGrad, {dq, dk, dv}, {dqkv});
  e.node(B, OpKind::kLinearBwd, {dqkv, qkv_cin}, {dln1y}).linear =
      L(LinearSlot::kQkv);
  {
    Node& n = e.node(B, OpKind::kLayerNormBwd,
                     {dln1y, x2d, ln1_mean, ln1_rstd}, {dln1x});
    n.param = P(ParamSlot::kLn1Gamma);
    n.param2 = P(ParamSlot::kLn1Beta);
  }
  e.node(B, OpKind::kAdd, {dh1, dln1x}, {dx2d});
  e.node(B, OpKind::kView3D, {dx2d}, {dx});
  return plan;
}

LayerPlan build_layer_plan(const model::GptConfig& config, bool with_dropout,
                           const PlannerOptions& opts) {
  LayerPlan plan = build_unfused_layer_plan(config, with_dropout, opts.tp_size);
  if (opts.fuse) fuse_operators(plan);
  if (opts.inference) {
    // Decode/serving plans never run backward; dropping it after fusion
    // keeps the fused forward topology identical to the training plan's.
    plan.bwd.clear();
    if (opts.quant != nullptr) {
      const int nsel = select_kernels(plan, *opts.quant);
      PTDP_CHECK_GE(nsel, 0);
    }
  }
  if (opts.propagate_dtypes) propagate_dtypes(plan, config);
  analyze_lifetimes(plan);
  if (opts.plan_buffers) plan_buffers(plan);
  return plan;
}

StagePlan build_stage_plan(const model::GptConfig& config,
                           std::int64_t layer_begin, std::int64_t layer_end,
                           bool has_embedding, bool has_head, bool recompute,
                           const PlannerOptions& opts) {
  StagePlan sp;
  sp.layer_begin = layer_begin;
  sp.layer_end = layer_end;
  sp.has_embedding = has_embedding;
  sp.has_head = has_head;
  sp.recompute = recompute;
  for (std::int64_t l = layer_begin; l < layer_end; ++l) {
    sp.layers.push_back(build_layer_plan(config, config.dropout > 0.0f, opts));
  }
  return sp;
}

}  // namespace ptdp::graph
