#include "ptdp/tensor/quant_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ptdp/runtime/parallel_for.hpp"
#include "ptdp/tensor/tensor.hpp"

namespace ptdp::tensor {

namespace {

using runtime::parallel_for;

// Same fan-out threshold the f32 GEMM driver uses: below this many FLOPs
// per chunk the pool dispatch is not worth it.
constexpr std::int64_t kQuantGrainFlops = 1 << 22;

std::int64_t payload_row_bytes(QuantKind kind) {
  return kind == QuantKind::kQ4 ? kQuantPanel / 2 : kQuantPanel;
}

// Asymmetric affine parameters of one (group, column): s and integer z such
// that q = round(w/s) + z lands in [0, Q] for every w in [mn, mx] and
// ŵ = (q - z)·s has error ≤ s/2 ≤ (mx - mn)/Q. The scale is first set to
// the exact range/Q, the zero-point rounded to an integer, then the scale
// widened just enough that the *rounded* z still covers both extremes —
// clamping never distorts in-range weights.
void affine_params(float mn, float mx, std::int64_t levels, float& s_out,
                   std::uint8_t& z_out) {
  if (mx <= mn) {
    // Degenerate group (constant value v): s = v, z = 0, q = 1 reproduces v
    // exactly; all-zero groups get s = 0.
    s_out = mx;
    z_out = 0;
    return;
  }
  const float q = static_cast<float>(levels);
  const float s0 = (mx - mn) / q;
  const long z = std::clamp<long>(std::lround(-mn / s0), 0, levels);
  float s = s0;
  if (z > 0) s = std::max(s, -mn / static_cast<float>(z));
  if (z < levels) s = std::max(s, mx / static_cast<float>(levels - z));
  s_out = s;
  z_out = static_cast<std::uint8_t>(z);
}

std::uint8_t quantize_value(float w, float s, std::uint8_t z, std::int64_t levels) {
  if (s == 0.0f) return 0;
  const long q =
      std::clamp<long>(std::lround(w / s) + static_cast<long>(z), 0, levels);
  return static_cast<std::uint8_t>(q);
}

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#if defined(__GNUC__) || defined(__clang__)
#define PTDP_QUANT_VEC 1
// Two 8-lane halves cover one 16-column panel; aligned(4) keeps loads legal
// straight off the float-aligned scales array (the payload halves go
// through memcpy'd u8x8 vectors, so payload alignment never matters).
using VecF8 = float __attribute__((vector_size(8 * sizeof(float)),
                                   aligned(alignof(float))));
using VecI8 = std::int32_t __attribute__((vector_size(8 * sizeof(std::int32_t)),
                                          aligned(alignof(float))));
using VecU8x8 = std::uint8_t __attribute__((vector_size(8), aligned(1)));

inline VecU8x8 load_u8x8(const std::uint8_t* p) {
  VecU8x8 v;
  std::memcpy(&v, p, 8);
  return v;
}
// u8 -> i32 -> f32 (vpmovzxbd + vcvtdq2ps on AVX2): GCC scalarizes the
// direct u8 -> f32 convertvector into 8 vpextrb/vcvtusi2ss pairs, which
// costs more than the FMAs it feeds. Both routes are exact for 0..255.
inline VecF8 cvt_f8(VecU8x8 q) {
  return __builtin_convertvector(__builtin_convertvector(q, VecI8), VecF8);
}

// Load 8 packed u8 values straight to f32 lanes. GCC compiles the generic
// cvt_f8(load_u8x8(p)) route through a 64-bit integer register and extracts
// bytes one at a time when the source is a fresh memory load, so the int8
// payload stream (two of these per k step) needs the intrinsic form to get
// the single vpmovzxbd load it deserves. Zero-points load once per group and
// the q4 nibble path keeps its vector mask/shift form, which GCC already
// vectorizes; both routes are exact for 0..255.
#if defined(__AVX2__)
inline VecF8 load_q8_f32(const std::uint8_t* p) {
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return (VecF8)_mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(b));
}
#else
inline VecF8 load_q8_f32(const std::uint8_t* p) { return cvt_f8(load_u8x8(p)); }
#endif

// One 16-column panel x MB rows: acc[i] += a[i, kk] * (q[kk] - z)*s over all
// of k. Scales/zero-points load once per group; the inner loop is unpack +
// two FMAs per half. kQ4 splits each byte into lo/hi nibbles = columns
// j / j+8, which is why the pack layout interleaves that way.
template <int MB, bool kQ4>
void qgemm_block(const float* __restrict a, std::int64_t lda, std::int64_t k,
                 std::int64_t group, const std::uint8_t* __restrict pay,
                 const float* __restrict sc, const std::uint8_t* __restrict zp,
                 std::int64_t meta_stride, float* __restrict out) {
  VecF8 lo[MB], hi[MB];
  for (int i = 0; i < MB; ++i) {
    lo[i] = VecF8{};
    hi[i] = VecF8{};
  }
  const VecU8x8 nib_mask = {15, 15, 15, 15, 15, 15, 15, 15};
  const std::int64_t ngroups = k / group;
  for (std::int64_t gi = 0; gi < ngroups; ++gi) {
    const float* s = sc + gi * meta_stride;
    const std::uint8_t* z = zp + gi * meta_stride;
    const VecF8 slo = *reinterpret_cast<const VecF8*>(s);
    const VecF8 shi = *reinterpret_cast<const VecF8*>(s + 8);
    const VecF8 zlo = cvt_f8(load_u8x8(z));
    const VecF8 zhi = cvt_f8(load_u8x8(z + 8));
    const std::int64_t k1 = (gi + 1) * group;
    for (std::int64_t kk = gi * group; kk < k1; ++kk) {
      VecF8 qlo, qhi;
      if constexpr (kQ4) {
        const VecU8x8 raw = load_u8x8(pay + kk * 8);
        qlo = cvt_f8(raw & nib_mask);
        qhi = cvt_f8(raw >> 4);
      } else {
        qlo = load_q8_f32(pay + kk * 16);
        qhi = load_q8_f32(pay + kk * 16 + 8);
      }
      const VecF8 wlo = (qlo - zlo) * slo;
      const VecF8 whi = (qhi - zhi) * shi;
      for (int i = 0; i < MB; ++i) {
        const float av = a[i * lda + kk];
        lo[i] += av * wlo;
        hi[i] += av * whi;
      }
    }
  }
  for (int i = 0; i < MB; ++i) {
    *reinterpret_cast<VecF8*>(out + i * kQuantPanel) = lo[i];
    *reinterpret_cast<VecF8*>(out + i * kQuantPanel + 8) = hi[i];
  }
}
#else
// Portable fallback: scalar dequant inside the same panel/group walk, so the
// layout contract and accumulation order are identical to the vector path.
template <int MB, bool kQ4>
void qgemm_block(const float* __restrict a, std::int64_t lda, std::int64_t k,
                 std::int64_t group, const std::uint8_t* __restrict pay,
                 const float* __restrict sc, const std::uint8_t* __restrict zp,
                 std::int64_t meta_stride, float* __restrict out) {
  float acc[MB][kQuantPanel] = {};
  const std::int64_t ngroups = k / group;
  for (std::int64_t gi = 0; gi < ngroups; ++gi) {
    const float* s = sc + gi * meta_stride;
    const std::uint8_t* z = zp + gi * meta_stride;
    const std::int64_t k1 = (gi + 1) * group;
    for (std::int64_t kk = gi * group; kk < k1; ++kk) {
      float w[kQuantPanel];
      for (int j = 0; j < kQuantPanel; ++j) {
        std::uint8_t q;
        if constexpr (kQ4) {
          const std::uint8_t raw = pay[kk * 8 + (j & 7)];
          q = j < 8 ? (raw & 0x0F) : (raw >> 4);
        } else {
          q = pay[kk * 16 + j];
        }
        w[j] = (static_cast<float>(q) - static_cast<float>(z[j])) * s[j];
      }
      for (int i = 0; i < MB; ++i) {
        const float av = a[i * lda + kk];
        for (int j = 0; j < kQuantPanel; ++j) acc[i][j] += av * w[j];
      }
    }
  }
  for (int i = 0; i < MB; ++i) {
    for (int j = 0; j < kQuantPanel; ++j) out[i * kQuantPanel + j] = acc[i][j];
  }
}
#endif

template <bool kQ4>
void qgemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
           std::int64_t lda, const std::uint8_t* payload, const float* scales,
           const std::uint8_t* zeros, std::int64_t group, float* c,
           std::int64_t ldc) {
  PTDP_CHECK_GT(group, 0);
  PTDP_CHECK_EQ(k % group, 0) << "group must divide k";
  const std::int64_t npanels = quant_num_panels(n);
  const std::int64_t meta_stride = npanels * kQuantPanel;
  const std::int64_t row_bytes = kQ4 ? kQuantPanel / 2 : kQuantPanel;
  const std::int64_t panel_flops = 2 * m * k * kQuantPanel;
  const std::int64_t grain = std::max<std::int64_t>(
      1, kQuantGrainFlops / std::max<std::int64_t>(panel_flops, 1));
  parallel_for(0, npanels, grain, [&](std::int64_t p0, std::int64_t p1) {
    alignas(32) float scratch[4 * kQuantPanel];
    for (std::int64_t jp = p0; jp < p1; ++jp) {
      const std::uint8_t* pay = payload + jp * k * row_bytes;
      const float* sc = scales + jp * kQuantPanel;
      const std::uint8_t* zp = zeros + jp * kQuantPanel;
      const std::int64_t nr = std::min(kQuantPanel, n - jp * kQuantPanel);
      auto store = [&](std::int64_t i0, int mb) {
        for (int r = 0; r < mb; ++r) {
          std::memcpy(c + (i0 + r) * ldc + jp * kQuantPanel,
                      scratch + r * kQuantPanel,
                      static_cast<std::size_t>(nr) * sizeof(float));
        }
      };
      std::int64_t i = 0;
      for (; i + 4 <= m; i += 4) {
        qgemm_block<4, kQ4>(a + i * lda, lda, k, group, pay, sc, zp, meta_stride,
                            scratch);
        store(i, 4);
      }
      for (; i + 2 <= m; i += 2) {
        qgemm_block<2, kQ4>(a + i * lda, lda, k, group, pay, sc, zp, meta_stride,
                            scratch);
        store(i, 2);
      }
      for (; i < m; ++i) {
        qgemm_block<1, kQ4>(a + i * lda, lda, k, group, pay, sc, zp, meta_stride,
                            scratch);
        store(i, 1);
      }
    }
  });
}

}  // namespace

const char* quant_kind_name(QuantKind kind) {
  return kind == QuantKind::kQ4 ? "q4" : "int8";
}

std::int64_t quant_levels(QuantKind kind) {
  return kind == QuantKind::kQ4 ? 15 : 255;
}

std::int64_t quant_payload_bytes(QuantKind kind, std::int64_t k, std::int64_t n) {
  return k * quant_num_panels(n) * payload_row_bytes(kind);
}

std::int64_t quant_meta_elems(std::int64_t k, std::int64_t n, std::int64_t group) {
  PTDP_CHECK_GT(group, 0);
  PTDP_CHECK_EQ(k % group, 0) << "group must divide k";
  return (k / group) * quant_num_panels(n) * kQuantPanel;
}

void quant_pack(QuantKind kind, const float* w, std::int64_t k, std::int64_t n,
                std::int64_t group, std::uint8_t* payload, float* scales,
                std::uint8_t* zeros) {
  const std::int64_t levels = quant_levels(kind);
  const std::int64_t npanels = quant_num_panels(n);
  const std::int64_t meta_stride = npanels * kQuantPanel;
  const std::int64_t row_bytes = payload_row_bytes(kind);
  const std::int64_t ngroups = quant_meta_elems(k, n, group) / meta_stride;
  // Panels are independent, so pack-at-load parallelizes without changing
  // a single output byte.
  const std::int64_t grain =
      std::max<std::int64_t>(1, (1 << 18) / std::max<std::int64_t>(k, 1));
  parallel_for(0, npanels, grain, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t jp = p0; jp < p1; ++jp) {
      float s[kQuantPanel];
      std::uint8_t z[kQuantPanel];
      for (std::int64_t gi = 0; gi < ngroups; ++gi) {
        for (std::int64_t j = 0; j < kQuantPanel; ++j) {
          const std::int64_t col = jp * kQuantPanel + j;
          if (col >= n) {
            s[j] = 0.0f;
            z[j] = 0;
            continue;
          }
          float mn = w[gi * group * n + col];
          float mx = mn;
          for (std::int64_t kk = gi * group + 1; kk < (gi + 1) * group; ++kk) {
            const float v = w[kk * n + col];
            mn = std::min(mn, v);
            mx = std::max(mx, v);
          }
          affine_params(mn, mx, levels, s[j], z[j]);
        }
        float* sc = scales + (gi * npanels + jp) * kQuantPanel;
        std::uint8_t* zp = zeros + (gi * npanels + jp) * kQuantPanel;
        std::copy_n(s, kQuantPanel, sc);
        std::copy_n(z, kQuantPanel, zp);
        for (std::int64_t kk = gi * group; kk < (gi + 1) * group; ++kk) {
          std::uint8_t q[kQuantPanel];
          for (std::int64_t j = 0; j < kQuantPanel; ++j) {
            const std::int64_t col = jp * kQuantPanel + j;
            q[j] = col < n ? quantize_value(w[kk * n + col], s[j], z[j], levels) : 0;
          }
          std::uint8_t* dst = payload + (jp * k + kk) * row_bytes;
          if (kind == QuantKind::kQ4) {
            for (std::int64_t j = 0; j < 8; ++j) {
              dst[j] = static_cast<std::uint8_t>(q[j] | (q[j + 8] << 4));
            }
          } else {
            std::copy_n(q, kQuantPanel, dst);
          }
        }
      }
    }
  });
}

void quant_unpack(QuantKind kind, const std::uint8_t* payload, const float* scales,
                  const std::uint8_t* zeros, std::int64_t k, std::int64_t n,
                  std::int64_t group, float* w) {
  const std::int64_t npanels = quant_num_panels(n);
  const std::int64_t row_bytes = payload_row_bytes(kind);
  for (std::int64_t jp = 0; jp < npanels; ++jp) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int64_t gi = kk / group;
      const float* s = scales + (gi * npanels + jp) * kQuantPanel;
      const std::uint8_t* z = zeros + (gi * npanels + jp) * kQuantPanel;
      const std::uint8_t* src = payload + (jp * k + kk) * row_bytes;
      const std::int64_t nr = std::min(kQuantPanel, n - jp * kQuantPanel);
      for (std::int64_t j = 0; j < nr; ++j) {
        std::uint8_t q;
        if (kind == QuantKind::kQ4) {
          const std::uint8_t raw = src[j & 7];
          q = j < 8 ? (raw & 0x0F) : (raw >> 4);
        } else {
          q = src[j];
        }
        w[kk * n + jp * kQuantPanel + j] =
            (static_cast<float>(q) - static_cast<float>(z[j])) * s[j];
      }
    }
  }
}

void gemm_f32xq8(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                 std::int64_t lda, const std::uint8_t* payload, const float* scales,
                 const std::uint8_t* zeros, std::int64_t group, float* c,
                 std::int64_t ldc) {
  qgemm<false>(m, n, k, a, lda, payload, scales, zeros, group, c, ldc);
}

void gemm_f32xq4(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                 std::int64_t lda, const std::uint8_t* payload, const float* scales,
                 const std::uint8_t* zeros, std::int64_t group, float* c,
                 std::int64_t ldc) {
  qgemm<true>(m, n, k, a, lda, payload, scales, zeros, group, c, ldc);
}

void gemm_f32xq(QuantKind kind, std::int64_t m, std::int64_t n, std::int64_t k,
                const float* a, std::int64_t lda, const std::uint8_t* payload,
                const float* scales, const std::uint8_t* zeros, std::int64_t group,
                float* c, std::int64_t ldc) {
  if (kind == QuantKind::kQ4) {
    gemm_f32xq4(m, n, k, a, lda, payload, scales, zeros, group, c, ldc);
  } else {
    gemm_f32xq8(m, n, k, a, lda, payload, scales, zeros, group, c, ldc);
  }
}

}  // namespace ptdp::tensor
