#include "ptdp/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "ptdp/runtime/parallel_for.hpp"

namespace ptdp::tensor {

namespace {

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

using runtime::parallel_for;

// Grain sizing: chunks below ~32K elements run serially inline, so the
// tiny tensors used by tests never pay fan-out overhead.
constexpr std::int64_t kElemGrain = 1 << 15;

std::int64_t row_grain(std::int64_t n) {
  return std::max<std::int64_t>(1, kElemGrain / std::max<std::int64_t>(n, 1));
}

// ---- packed, cache-blocked GEMM ------------------------------------------------
//
// All three variants (NN/NT/TN) run through one driver that views A as
// A(i,p) = a[i*rsa + p*csa] and B as B(p,j) = b[p*rsb + j*csb]; the packing
// step absorbs the transpose, so the microkernel only ever sees contiguous
// panels (this is also what removed the old data-dependent sparsity branch
// in the TN kernel — gradient GEMM time no longer depends on activation
// sparsity). C is fully OVERWRITTEN (beta = 0): the first k-panel stores
// its tile, later panels accumulate — so callers can hand in
// Tensor::empty storage and skip the zero-fill memset.
//
// Blocking follows the BLIS decomposition: pack a KCxNR B sliver and an
// MRxKC A micro-panel into contiguous scratch (zero-padded to full tiles so
// edge shapes take the same code path), accumulate an MRxNR register tile
// with a plain FMA-friendly accumulator array the compiler vectorizes at
// -O3, then add the tile into C. Row panels (MC rows) are distributed over
// the intra-op pool; the kc loop stays serial and each C element is only
// ever touched by the thread owning its row panel, so accumulation order —
// and therefore the bit pattern of the result — is independent of the
// thread count.

constexpr std::int64_t kMR = 8;     // micro-tile rows
constexpr std::int64_t kNR = 16;    // micro-tile cols (one AVX-512 / two AVX2 vectors)
constexpr std::int64_t kMC = 128;   // row-panel height (multiple of kMR)
constexpr std::int64_t kKC = 256;   // k-panel depth
constexpr std::int64_t kNC = 1024;  // column-panel width (multiple of kNR)

// Below this many FLOPs per row-panel chunk the fan-out is not worth it.
constexpr std::int64_t kGemmGrainFlops = 1 << 22;

// A block [i0, i0+mc) x [p0, p0+kc) packed as ceil(mc/kMR) micro-panels,
// each kc steps of kMR contiguous row elements, zero-padded to kMR.
void pack_a_block(const float* a, std::int64_t rsa, std::int64_t csa,
                  std::int64_t i0, std::int64_t mc, std::int64_t p0,
                  std::int64_t kc, float* ap) {
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t mr = std::min(kMR, mc - ir);
    float* dst = ap + ir * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* src = a + (i0 + ir) * rsa + (p0 + p) * csa;
      for (std::int64_t i = 0; i < mr; ++i) dst[p * kMR + i] = src[i * rsa];
      for (std::int64_t i = mr; i < kMR; ++i) dst[p * kMR + i] = 0.0f;
    }
  }
}

// B panel [p0, p0+kc) x [j0, j0+nc) packed as ceil(nc/kNR) slivers, each kc
// steps of kNR contiguous column elements, zero-padded to kNR.
void pack_b_panel(const float* b, std::int64_t rsb, std::int64_t csb,
                  std::int64_t p0, std::int64_t kc, std::int64_t j0,
                  std::int64_t nc, float* bp) {
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t nr = std::min(kNR, nc - jr);
    float* dst = bp + jr * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* src = b + (p0 + p) * rsb + (j0 + jr) * csb;
      for (std::int64_t j = 0; j < nr; ++j) dst[p * kNR + j] = src[j * csb];
      for (std::int64_t j = nr; j < kNR; ++j) dst[p * kNR + j] = 0.0f;
    }
  }
}

// acc[kMR][kNR] += Ap · Bp over kc steps.
#if defined(__GNUC__) || defined(__clang__)
// One vector register file's worth of accumulators: kMR row vectors of kNR
// lanes each, updated by broadcast(a) * b FMAs. Writing the tile with vector
// extensions (rather than hoping the auto-vectorizer picks the right axis)
// is what keeps the accumulators in registers across the k loop. aligned(4)
// lets the loads come straight off the float-aligned packed panels.
using VecNR = float __attribute__((vector_size(sizeof(float) * kNR),
                                   aligned(alignof(float))));

void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float* __restrict acc) {
  static_assert(kMR == 8, "accumulator bank below is written for kMR == 8");
  VecNR c0{}, c1{}, c2{}, c3{}, c4{}, c5{}, c6{}, c7{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMR;
    const VecNR b = *reinterpret_cast<const VecNR*>(bp + p * kNR);
    c0 += arow[0] * b;
    c1 += arow[1] * b;
    c2 += arow[2] * b;
    c3 += arow[3] * b;
    c4 += arow[4] * b;
    c5 += arow[5] * b;
    c6 += arow[6] * b;
    c7 += arow[7] * b;
  }
  const VecNR cs[kMR] = {c0, c1, c2, c3, c4, c5, c6, c7};
  for (std::int64_t i = 0; i < kMR; ++i) {
    *reinterpret_cast<VecNR*>(acc + i * kNR) = cs[i];
  }
}
#else
void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float* __restrict acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMR;
    const float* brow = bp + p * kNR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      for (std::int64_t j = 0; j < kNR; ++j) {
        acc[i * kNR + j] += arow[i] * brow[j];
      }
    }
  }
}
#endif

void gemm_strided(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                  std::int64_t rsa, std::int64_t csa, const float* b,
                  std::int64_t rsb, std::int64_t csb, float* c) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Empty contraction: the product is the zero matrix, and C may be
    // uninitialized storage.
    std::fill_n(c, m * n, 0.0f);
    return;
  }
  const std::int64_t nc_max = std::min(n, kNC);
  const std::int64_t nc_padded = (nc_max + kNR - 1) / kNR * kNR;
  std::vector<float> bp(static_cast<std::size_t>(kKC * nc_padded));

  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      pack_b_panel(b, rsb, csb, pc, kc, jc, nc, bp.data());

      const std::int64_t nblocks = (m + kMC - 1) / kMC;
      const std::int64_t block_flops = 2 * kMC * nc * kc;
      const std::int64_t grain =
          std::max<std::int64_t>(1, kGemmGrainFlops / std::max<std::int64_t>(
                                                          block_flops, 1));
      parallel_for(0, nblocks, grain, [&](std::int64_t blk0, std::int64_t blk1) {
        thread_local std::vector<float> ap;
        ap.resize(static_cast<std::size_t>(kMC * kKC));
        for (std::int64_t blk = blk0; blk < blk1; ++blk) {
          const std::int64_t i0 = blk * kMC;
          const std::int64_t mc = std::min(kMC, m - i0);
          pack_a_block(a, rsa, csa, i0, mc, pc, kc, ap.data());
          for (std::int64_t jr = 0; jr < nc; jr += kNR) {
            const std::int64_t nr = std::min(kNR, nc - jr);
            const float* bsliver = bp.data() + jr * kc;
            for (std::int64_t ir = 0; ir < mc; ir += kMR) {
              const std::int64_t mr = std::min(kMR, mc - ir);
              float acc[kMR * kNR] = {};
              micro_kernel(kc, ap.data() + ir * kc, bsliver, acc);
              for (std::int64_t i = 0; i < mr; ++i) {
                float* crow = c + (i0 + ir + i) * n + jc + jr;
                if (pc == 0) {
                  // First k-panel overwrites (beta = 0); later panels add.
                  for (std::int64_t j = 0; j < nr; ++j) crow[j] = acc[i * kNR + j];
                } else {
                  for (std::int64_t j = 0; j < nr; ++j) crow[j] += acc[i * kNR + j];
                }
              }
            }
          }
        }
      });
    }
  }
}

// C[m,n] = A[m,k] · B[k,n], all row-major. C may be uninitialized.
void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c) {
  gemm_strided(m, n, k, a, k, 1, b, n, 1, c);
}

// C[m,n] = A[m,k] · B[n,k]ᵀ.
void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c) {
  gemm_strided(m, n, k, a, k, 1, b, 1, k, c);
}

// C[m,n] = A[k,m]ᵀ · B[k,n].
void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c) {
  gemm_strided(m, n, k, a, 1, m, b, n, 1, c);
}

void check_2d(const Tensor& t, const char* what) {
  PTDP_CHECK_EQ(t.ndim(), 2) << what << " must be 2-D, got " << t.shape_str();
}
void check_3d(const Tensor& t, const char* what) {
  PTDP_CHECK_EQ(t.ndim(), 3) << what << " must be 3-D, got " << t.shape_str();
}

// Rows/cols split for "[..., n]" tensors.
std::int64_t leading_rows(const Tensor& t) {
  PTDP_CHECK_GE(t.ndim(), 1);
  return t.numel() / t.dim(-1);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul lhs");
  check_2d(b, "matmul rhs");
  PTDP_CHECK_EQ(a.dim(1), b.dim(0)) << a.shape_str() << " x " << b.shape_str();
  Tensor c = Tensor::empty({a.dim(0), b.dim(1)});
  gemm_nn(a.dim(0), b.dim(1), a.dim(1), a.data().data(), b.data().data(),
          c.data().data());
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_nt lhs");
  check_2d(b, "matmul_nt rhs");
  PTDP_CHECK_EQ(a.dim(1), b.dim(1)) << a.shape_str() << " x " << b.shape_str() << "^T";
  Tensor c = Tensor::empty({a.dim(0), b.dim(0)});
  gemm_nt(a.dim(0), b.dim(0), a.dim(1), a.data().data(), b.data().data(),
          c.data().data());
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_tn lhs");
  check_2d(b, "matmul_tn rhs");
  PTDP_CHECK_EQ(a.dim(0), b.dim(0)) << a.shape_str() << "^T x " << b.shape_str();
  Tensor c = Tensor::empty({a.dim(1), b.dim(1)});
  gemm_tn(a.dim(1), b.dim(1), a.dim(0), a.data().data(), b.data().data(),
          c.data().data());
  return c;
}

namespace {

template <typename Kernel>
Tensor bmm_impl(const Tensor& a, const Tensor& b, std::int64_t m, std::int64_t n,
                std::int64_t k, Kernel kernel) {
  const std::int64_t batches = a.dim(0);
  Tensor c = Tensor::empty({batches, m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  const std::int64_t sa = a.dim(1) * a.dim(2);
  const std::int64_t sb = b.dim(1) * b.dim(2);
  const std::int64_t sc = m * n;
  // Batches are embarrassingly parallel; when a single batch is big enough
  // to fan out on its own (range <= grain here), the per-batch GEMM
  // parallelizes over row panels instead.
  const std::int64_t batch_flops = 2 * m * n * k;
  const std::int64_t grain = std::max<std::int64_t>(
      1, kGemmGrainFlops / std::max<std::int64_t>(batch_flops, 1));
  parallel_for(0, batches, grain, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t batch = b0; batch < b1; ++batch) {
      kernel(m, n, k, pa + batch * sa, pb + batch * sb, pc + batch * sc);
    }
  });
  return c;
}

}  // namespace

Tensor bmm(const Tensor& a, const Tensor& b) {
  check_3d(a, "bmm lhs");
  check_3d(b, "bmm rhs");
  PTDP_CHECK_EQ(a.dim(0), b.dim(0));
  PTDP_CHECK_EQ(a.dim(2), b.dim(1)) << a.shape_str() << " x " << b.shape_str();
  return bmm_impl(a, b, a.dim(1), b.dim(2), a.dim(2), gemm_nn);
}

Tensor bmm_nt(const Tensor& a, const Tensor& b) {
  check_3d(a, "bmm_nt lhs");
  check_3d(b, "bmm_nt rhs");
  PTDP_CHECK_EQ(a.dim(0), b.dim(0));
  PTDP_CHECK_EQ(a.dim(2), b.dim(2)) << a.shape_str() << " x " << b.shape_str() << "^T";
  return bmm_impl(a, b, a.dim(1), b.dim(1), a.dim(2), gemm_nt);
}

Tensor bmm_tn(const Tensor& a, const Tensor& b) {
  check_3d(a, "bmm_tn lhs");
  check_3d(b, "bmm_tn rhs");
  PTDP_CHECK_EQ(a.dim(0), b.dim(0));
  PTDP_CHECK_EQ(a.dim(1), b.dim(1)) << a.shape_str() << "^T x " << b.shape_str();
  return bmm_impl(a, b, a.dim(2), b.dim(2), a.dim(1), gemm_tn);
}

// ---- elementwise ---------------------------------------------------------------

namespace {
template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F f) {
  PTDP_CHECK(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  Tensor out = Tensor::empty(a.shape());
  auto da = a.data();
  auto db = b.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(da.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) dout[i] = f(da[i], db[i]);
               });
  return out;
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; });
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor out = Tensor::empty(a.shape());
  auto da = a.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(da.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) dout[i] = alpha * da[i];
               });
  return out;
}

void add_(Tensor& a, const Tensor& b) {
  PTDP_CHECK(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  auto da = a.data();
  auto db = b.data();
  parallel_for(0, static_cast<std::int64_t>(da.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) da[i] += db[i];
               });
}

void axpy_(Tensor& y, float alpha, const Tensor& x) {
  PTDP_CHECK(y.same_shape(x)) << y.shape_str() << " vs " << x.shape_str();
  auto dy = y.data();
  auto dx = x.data();
  parallel_for(0, static_cast<std::int64_t>(dy.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) dy[i] += alpha * dx[i];
               });
}

void scale_(Tensor& a, float alpha) {
  auto da = a.data();
  parallel_for(0, static_cast<std::int64_t>(da.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) da[i] *= alpha;
               });
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  PTDP_CHECK_EQ(bias.ndim(), 1);
  PTDP_CHECK_EQ(x.dim(-1), bias.dim(0));
  const std::int64_t rows = leading_rows(x);
  const std::int64_t n = x.dim(-1);
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto db = bias.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      for (std::int64_t j = 0; j < n; ++j) {
        dout[static_cast<std::size_t>(r * n + j)] =
            dx[static_cast<std::size_t>(r * n + j)] + db[static_cast<std::size_t>(j)];
      }
    }
  });
  return out;
}

Tensor bias_grad(const Tensor& dy) {
  const std::int64_t rows = leading_rows(dy);
  const std::int64_t n = dy.dim(-1);
  Tensor g({n});
  auto ddy = dy.data();
  auto dg = g.data();
  // Parallel over column stripes: each output element is reduced serially
  // over rows inside one chunk, so the sum order (and bit pattern) matches
  // the serial kernel for every thread count.
  parallel_for(0, n, row_grain(rows), [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t j = j0; j < j1; ++j) {
        dg[static_cast<std::size_t>(j)] += ddy[static_cast<std::size_t>(r * n + j)];
      }
    }
  });
  return g;
}

// ---- activations ---------------------------------------------------------------

namespace {
inline float gelu_scalar(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}
inline float gelu_grad_scalar(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}
}  // namespace

Tensor gelu(const Tensor& x) {
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(dx.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) dout[i] = gelu_scalar(dx[i]);
               });
  return out;
}

Tensor gelu_backward(const Tensor& dy, const Tensor& x) {
  PTDP_CHECK(dy.same_shape(x));
  Tensor out = Tensor::empty(x.shape());
  auto ddy = dy.data();
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(dx.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) {
                   dout[i] = ddy[i] * gelu_grad_scalar(dx[i]);
                 }
               });
  return out;
}

// Stays serial: the Bernoulli draws consume one RNG stream in element order,
// so splitting the loop would change which element sees which draw.
Tensor dropout(const Tensor& x, float p, Rng& rng, Tensor& mask) {
  PTDP_CHECK_GE(p, 0.0f);
  PTDP_CHECK_LT(p, 1.0f);
  mask = Tensor::empty(x.shape());
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto dm = mask.data();
  auto dout = out.data();
  if (p == 0.0f) {
    std::fill(dm.begin(), dm.end(), 1.0f);
    std::copy(dx.begin(), dx.end(), dout.begin());
    return out;
  }
  const float keep_scale = 1.0f / (1.0f - p);
  for (std::size_t i = 0; i < dx.size(); ++i) {
    const float m = rng.next_bernoulli(p) ? 0.0f : keep_scale;
    dm[i] = m;
    dout[i] = dx[i] * m;
  }
  return out;
}

Tensor dropout_backward(const Tensor& dy, const Tensor& mask) { return mul(dy, mask); }

// ---- normalization -------------------------------------------------------------

LayerNormResult layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                          float eps) {
  PTDP_CHECK_EQ(gamma.ndim(), 1);
  PTDP_CHECK_EQ(beta.ndim(), 1);
  const std::int64_t n = x.dim(-1);
  PTDP_CHECK_EQ(gamma.dim(0), n);
  PTDP_CHECK_EQ(beta.dim(0), n);
  const std::int64_t rows = leading_rows(x);

  LayerNormResult result{Tensor::empty(x.shape()), Tensor::empty({rows}),
                         Tensor::empty({rows})};
  auto dx = x.data();
  auto dg = gamma.data();
  auto db = beta.data();
  auto dy = result.y.data();
  auto dmean = result.mean.data();
  auto drstd = result.rstd.data();

  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* row = dx.data() + r * n;
      float sum = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) sum += row[j];
      const float mean = sum / static_cast<float>(n);
      float var = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        const float d = row[j] - mean;
        var += d * d;
      }
      var /= static_cast<float>(n);
      const float rstd = 1.0f / std::sqrt(var + eps);
      dmean[static_cast<std::size_t>(r)] = mean;
      drstd[static_cast<std::size_t>(r)] = rstd;
      float* out_row = dy.data() + r * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float xhat = (row[j] - mean) * rstd;
        out_row[j] =
            xhat * dg[static_cast<std::size_t>(j)] + db[static_cast<std::size_t>(j)];
      }
    }
  });
  return result;
}

LayerNormGrads layernorm_backward(const Tensor& dy, const Tensor& x,
                                  const Tensor& gamma, const Tensor& mean,
                                  const Tensor& rstd) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = leading_rows(x);
  PTDP_CHECK(dy.same_shape(x));
  PTDP_CHECK_EQ(mean.numel(), rows);
  PTDP_CHECK_EQ(rstd.numel(), rows);

  // dx is fully overwritten; dgamma/dbeta accumulate and must start at zero.
  LayerNormGrads grads{Tensor::empty(x.shape()), Tensor({n}), Tensor({n})};
  auto ddy = dy.data();
  auto dx = x.data();
  auto dg = gamma.data();
  auto dmean = mean.data();
  auto drstd = rstd.data();
  auto out_dx = grads.dx.data();
  auto out_dgamma = grads.dgamma.data();
  auto out_dbeta = grads.dbeta.data();

  // Pass 1 — dx, parallel over rows (each row's two reductions stay serial
  // inside its chunk).
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* xrow = dx.data() + r * n;
      const float* dyrow = ddy.data() + r * n;
      float* dxrow = out_dx.data() + r * n;
      const float m = dmean[static_cast<std::size_t>(r)];
      const float rs = drstd[static_cast<std::size_t>(r)];

      // dxhat = dy * gamma; dx = rstd*(dxhat - mean(dxhat) - xhat*mean(dxhat*xhat))
      float sum_dxhat = 0.0f;
      float sum_dxhat_xhat = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        const float xhat = (xrow[j] - m) * rs;
        const float dxhat = dyrow[j] * dg[static_cast<std::size_t>(j)];
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
      }
      const float inv_n = 1.0f / static_cast<float>(n);
      for (std::int64_t j = 0; j < n; ++j) {
        const float xhat = (xrow[j] - m) * rs;
        const float dxhat = dyrow[j] * dg[static_cast<std::size_t>(j)];
        dxrow[j] = rs * (dxhat - inv_n * sum_dxhat - xhat * inv_n * sum_dxhat_xhat);
      }
    }
  });

  // Pass 2 — dgamma/dbeta, parallel over column stripes; the row reduction
  // per column runs serially in ascending order for determinism.
  parallel_for(0, n, row_grain(rows), [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* xrow = dx.data() + r * n;
      const float* dyrow = ddy.data() + r * n;
      const float m = dmean[static_cast<std::size_t>(r)];
      const float rs = drstd[static_cast<std::size_t>(r)];
      for (std::int64_t j = j0; j < j1; ++j) {
        const float xhat = (xrow[j] - m) * rs;
        out_dgamma[static_cast<std::size_t>(j)] += dyrow[j] * xhat;
        out_dbeta[static_cast<std::size_t>(j)] += dyrow[j];
      }
    }
  });
  return grads;
}

// ---- softmax -------------------------------------------------------------------

Tensor softmax_lastdim(const Tensor& x) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = leading_rows(x);
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* row = dx.data() + r * n;
      float* orow = dout.data() + r * n;
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < n; ++j) mx = std::max(mx, row[j]);
      float denom = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        orow[j] = std::exp(row[j] - mx);
        denom += orow[j];
      }
      const float inv = 1.0f / denom;
      for (std::int64_t j = 0; j < n; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Tensor softmax_backward(const Tensor& y, const Tensor& dy) {
  PTDP_CHECK(y.same_shape(dy));
  const std::int64_t n = y.dim(-1);
  const std::int64_t rows = leading_rows(y);
  Tensor out = Tensor::empty(y.shape());
  auto dyv = dy.data();
  auto yv = y.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* yrow = yv.data() + r * n;
      const float* dyrow = dyv.data() + r * n;
      float* orow = dout.data() + r * n;
      float dot = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) dot += yrow[j] * dyrow[j];
      for (std::int64_t j = 0; j < n; ++j) orow[j] = yrow[j] * (dyrow[j] - dot);
    }
  });
  return out;
}

// ---- fused kernels -------------------------------------------------------------

Tensor fused_bias_gelu(const Tensor& x, const Tensor& bias) {
  PTDP_CHECK_EQ(bias.ndim(), 1);
  PTDP_CHECK_EQ(x.dim(-1), bias.dim(0));
  const std::int64_t rows = leading_rows(x);
  const std::int64_t n = x.dim(-1);
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto db = bias.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* xrow = dx.data() + r * n;
      float* orow = dout.data() + r * n;
      for (std::int64_t j = 0; j < n; ++j) {
        orow[j] = gelu_scalar(xrow[j] + db[static_cast<std::size_t>(j)]);
      }
    }
  });
  return out;
}

Tensor fused_bias_gelu_backward(const Tensor& dy, const Tensor& x, const Tensor& bias,
                                Tensor& dbias) {
  PTDP_CHECK(dy.same_shape(x));
  PTDP_CHECK(dbias.same_shape(bias));
  const std::int64_t rows = leading_rows(x);
  const std::int64_t n = x.dim(-1);
  Tensor out = Tensor::empty(x.shape());
  auto ddy = dy.data();
  auto dx = x.data();
  auto db = bias.data();
  auto ddb = dbias.data();
  auto dout = out.data();
  // dX in parallel over rows; the bias-grad reduction then runs over column
  // stripes of the already-computed dX so each ddb[j] accumulates rows in
  // ascending order no matter the thread count.
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* xrow = dx.data() + r * n;
      const float* dyrow = ddy.data() + r * n;
      float* orow = dout.data() + r * n;
      for (std::int64_t j = 0; j < n; ++j) {
        orow[j] =
            dyrow[j] * gelu_grad_scalar(xrow[j] + db[static_cast<std::size_t>(j)]);
      }
    }
  });
  parallel_for(0, n, row_grain(rows), [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* orow = dout.data() + r * n;
      for (std::int64_t j = j0; j < j1; ++j) {
        ddb[static_cast<std::size_t>(j)] += orow[j];
      }
    }
  });
  return out;
}

Tensor fused_bias_dropout_add(const Tensor& x, const Tensor& bias,
                              const Tensor& residual, float p, Rng& rng,
                              Tensor& mask) {
  PTDP_CHECK(x.same_shape(residual));
  Tensor biased = add_bias(x, bias);
  Tensor dropped = dropout(biased, p, rng, mask);
  add_(dropped, residual);
  return dropped;
}

Tensor fused_scale_causal_softmax(const Tensor& scores, float scl) {
  PTDP_CHECK_EQ(scores.ndim(), 3) << "scores must be [rows, sq, sk]";
  const std::int64_t rows = scores.dim(0);
  const std::int64_t sq = scores.dim(1);
  const std::int64_t sk = scores.dim(2);
  PTDP_CHECK_GE(sk, sq) << "causal mask requires sk >= sq";
  const std::int64_t shift = sk - sq;
  // Every element is written (masked tail gets explicit zeros).
  Tensor out = Tensor::empty(scores.shape());
  auto dx = scores.data();
  auto dout = out.data();
  parallel_for(0, rows * sq, row_grain(sk), [&](std::int64_t q0, std::int64_t q1) {
    for (std::int64_t q = q0; q < q1; ++q) {
      const std::int64_t i = q % sq;
      const float* row = dx.data() + q * sk;
      float* orow = dout.data() + q * sk;
      const std::int64_t valid = i + shift + 1;  // keys [0, valid) are visible
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < valid; ++j) mx = std::max(mx, scl * row[j]);
      float denom = 0.0f;
      for (std::int64_t j = 0; j < valid; ++j) {
        orow[j] = std::exp(scl * row[j] - mx);
        denom += orow[j];
      }
      const float inv = 1.0f / denom;
      for (std::int64_t j = 0; j < valid; ++j) orow[j] *= inv;
      for (std::int64_t j = valid; j < sk; ++j) orow[j] = 0.0f;
    }
  });
  return out;
}

Tensor fused_scale_mask_softmax(const Tensor& scores, const Tensor& mask, float scl) {
  PTDP_CHECK_EQ(scores.ndim(), 3) << "scores must be [rows, sq, sk]";
  PTDP_CHECK_EQ(mask.ndim(), 2);
  const std::int64_t rows = scores.dim(0);
  const std::int64_t sq = scores.dim(1);
  const std::int64_t sk = scores.dim(2);
  PTDP_CHECK_EQ(mask.dim(0), sq);
  PTDP_CHECK_EQ(mask.dim(1), sk);
  Tensor out = Tensor::empty(scores.shape());
  auto dx = scores.data();
  auto dm = mask.data();
  auto dout = out.data();
  parallel_for(0, rows * sq, row_grain(sk), [&](std::int64_t q0, std::int64_t q1) {
    for (std::int64_t q = q0; q < q1; ++q) {
      const std::int64_t i = q % sq;
      const float* row = dx.data() + q * sk;
      const float* mrow = dm.data() + i * sk;
      float* orow = dout.data() + q * sk;
      float mx = -std::numeric_limits<float>::infinity();
      bool any = false;
      for (std::int64_t j = 0; j < sk; ++j) {
        if (mrow[j] == 0.0f) {
          mx = std::max(mx, scl * row[j]);
          any = true;
        }
      }
      PTDP_CHECK(any) << "softmax row fully masked";
      float denom = 0.0f;
      for (std::int64_t j = 0; j < sk; ++j) {
        if (mrow[j] == 0.0f) {
          orow[j] = std::exp(scl * row[j] - mx);
          denom += orow[j];
        } else {
          orow[j] = 0.0f;
        }
      }
      const float inv = 1.0f / denom;
      for (std::int64_t j = 0; j < sk; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Tensor fused_scale_softmax_backward(const Tensor& y, const Tensor& dy, float scl) {
  Tensor dx = softmax_backward(y, dy);
  scale_(dx, scl);
  return dx;
}

// ---- embedding -----------------------------------------------------------------

Tensor embedding(const Tensor& table, std::span<const std::int32_t> ids) {
  PTDP_CHECK_EQ(table.ndim(), 2);
  const std::int64_t vocab = table.dim(0);
  const std::int64_t h = table.dim(1);
  Tensor out = Tensor::empty({static_cast<std::int64_t>(ids.size()), h});
  auto dt = table.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(ids.size()), row_grain(h),
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) {
                   const std::int32_t id = ids[static_cast<std::size_t>(i)];
                   PTDP_CHECK(id >= 0 && id < vocab)
                       << "token id " << id << " out of range";
                   std::copy_n(dt.data() + static_cast<std::int64_t>(id) * h, h,
                               dout.data() + i * h);
                 }
               });
  return out;
}

// Stays serial: duplicate ids scatter-add into the same table row, and the
// accumulation order must not depend on the thread count.
void embedding_backward(const Tensor& dy, std::span<const std::int32_t> ids,
                        Tensor& dtable) {
  PTDP_CHECK_EQ(dtable.ndim(), 2);
  const std::int64_t h = dtable.dim(1);
  PTDP_CHECK_EQ(dy.numel(), static_cast<std::int64_t>(ids.size()) * h);
  auto ddy = dy.data();
  auto dt = dtable.data();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int64_t id = ids[i];
    const float* src = ddy.data() + static_cast<std::int64_t>(i) * h;
    float* dst = dt.data() + id * h;
    for (std::int64_t j = 0; j < h; ++j) dst[j] += src[j];
  }
}

// ---- loss ----------------------------------------------------------------------

CrossEntropyResult cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> targets) {
  PTDP_CHECK_EQ(logits.ndim(), 2);
  const std::int64_t n = logits.dim(0);
  const std::int64_t vocab = logits.dim(1);
  PTDP_CHECK_EQ(static_cast<std::int64_t>(targets.size()), n);
  Tensor probs = softmax_lastdim(logits);
  auto dp = probs.data();
  double loss = 0.0;
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int32_t t = targets[static_cast<std::size_t>(r)];
    PTDP_CHECK(t >= 0 && t < vocab);
    loss -= std::log(std::max(dp[static_cast<std::size_t>(r * vocab + t)], 1e-30f));
  }
  return CrossEntropyResult{static_cast<float>(loss / static_cast<double>(n)),
                            std::move(probs)};
}

Tensor cross_entropy_backward(const Tensor& probs,
                              std::span<const std::int32_t> targets) {
  const std::int64_t n = probs.dim(0);
  const std::int64_t vocab = probs.dim(1);
  Tensor dlogits = probs.clone();
  auto dl = dlogits.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t r = 0; r < n; ++r) {
    dl[static_cast<std::size_t>(r * vocab + targets[static_cast<std::size_t>(r)])] -=
        1.0f;
  }
  for (float& v : dl) v *= inv_n;
  return dlogits;
}

// ---- reductions ----------------------------------------------------------------

float sum_all(const Tensor& x) {
  double s = 0.0;
  for (float v : x.data()) s += v;
  return static_cast<float>(s);
}

float mean_all(const Tensor& x) {
  PTDP_CHECK_GT(x.numel(), 0);
  return sum_all(x) / static_cast<float>(x.numel());
}

float max_all(const Tensor& x) {
  PTDP_CHECK_GT(x.numel(), 0);
  float m = -std::numeric_limits<float>::infinity();
  for (float v : x.data()) m = std::max(m, v);
  return m;
}

double squared_norm(const Tensor& x) {
  double s = 0.0;
  for (float v : x.data()) s += static_cast<double>(v) * v;
  return s;
}

Tensor row_max(const Tensor& x) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = leading_rows(x);
  Tensor out = Tensor::empty({rows});
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float m = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < n; ++j) {
        m = std::max(m, dx[static_cast<std::size_t>(r * n + j)]);
      }
      dout[static_cast<std::size_t>(r)] = m;
    }
  });
  return out;
}

Tensor row_sum(const Tensor& x) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = leading_rows(x);
  Tensor out = Tensor::empty({rows});
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float s = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        s += dx[static_cast<std::size_t>(r * n + j)];
      }
      dout[static_cast<std::size_t>(r)] = s;
    }
  });
  return out;
}

}  // namespace ptdp::tensor
