#include "ptdp/tensor/ops.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#if defined(__AMX_BF16__) && defined(__AMX_TILE__) && defined(__linux__)
#include <immintrin.h>
#include <sys/syscall.h>
#include <unistd.h>
#define PTDP_GEMM_NATIVE_BF16 1
#else
#define PTDP_GEMM_NATIVE_BF16 0
#endif

#include "ptdp/runtime/parallel_for.hpp"

namespace ptdp::tensor {

namespace {

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

using runtime::parallel_for;

// Grain sizing: chunks below ~32K elements run serially inline, so the
// tiny tensors used by tests never pay fan-out overhead.
constexpr std::int64_t kElemGrain = 1 << 15;

std::int64_t row_grain(std::int64_t n) {
  return std::max<std::int64_t>(1, kElemGrain / std::max<std::int64_t>(n, 1));
}

// ---- packed, cache-blocked GEMM ------------------------------------------------
//
// All three variants (NN/NT/TN) run through one driver that views A as
// A(i,p) = a[i*rsa + p*csa] and B as B(p,j) = b[p*rsb + j*csb]; the packing
// step absorbs the transpose, so the microkernel only ever sees contiguous
// panels (this is also what removed the old data-dependent sparsity branch
// in the TN kernel — gradient GEMM time no longer depends on activation
// sparsity). C is fully OVERWRITTEN (beta = 0): the first k-panel stores
// its tile, later panels accumulate — so callers can hand in
// Tensor::empty storage and skip the zero-fill memset.
//
// Blocking follows the BLIS decomposition: pack a KCxNR B sliver and an
// MRxKC A micro-panel into contiguous scratch (zero-padded to full tiles so
// edge shapes take the same code path), accumulate an MRxNR register tile
// with a plain FMA-friendly accumulator array the compiler vectorizes at
// -O3, then add the tile into C. Row panels (MC rows) are distributed over
// the intra-op pool; the kc loop stays serial and each C element is only
// ever touched by the thread owning its row panel, so accumulation order —
// and therefore the bit pattern of the result — is independent of the
// thread count.

constexpr std::int64_t kMR = 8;     // micro-tile rows
constexpr std::int64_t kNR = 16;    // micro-tile cols (one AVX-512 / two AVX2 vectors)
constexpr std::int64_t kMC = 128;   // row-panel height (multiple of kMR)
constexpr std::int64_t kKC = 256;   // k-panel depth
constexpr std::int64_t kNC = 1024;  // column-panel width (multiple of kNR)

// Below this many FLOPs per row-panel chunk the fan-out is not worth it.
constexpr std::int64_t kGemmGrainFlops = 1 << 22;

// The dtype axis enters the GEMM here and only here: source panels may be
// f32 or bf16, and the packing step widens bf16 inline (a shift, fused
// into the pack loop the compiler vectorizes). The microkernel below never
// changes — it always consumes f32 panels and accumulates in f32 — so
// bf16 inputs keep the bitwise-deterministic-across-threads property for
// free, and the uplift comes from halving the A/B bytes the pack loops
// stream from memory.
inline float load_f32(const float* p) { return *p; }
inline float load_f32(const bf16_t* p) { return bf16_to_f32(*p); }

// A block [i0, i0+mc) x [p0, p0+kc) packed as ceil(mc/kMR) micro-panels,
// each kc steps of kMR contiguous row elements, zero-padded to kMR.
template <typename TA>
void pack_a_block(const TA* a, std::int64_t rsa, std::int64_t csa,
                  std::int64_t i0, std::int64_t mc, std::int64_t p0,
                  std::int64_t kc, float* ap) {
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t mr = std::min(kMR, mc - ir);
    float* dst = ap + ir * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const TA* src = a + (i0 + ir) * rsa + (p0 + p) * csa;
      for (std::int64_t i = 0; i < mr; ++i) dst[p * kMR + i] = load_f32(src + i * rsa);
      for (std::int64_t i = mr; i < kMR; ++i) dst[p * kMR + i] = 0.0f;
    }
  }
}

// B panel [p0, p0+kc) x [j0, j0+nc) packed as ceil(nc/kNR) slivers, each kc
// steps of kNR contiguous column elements, zero-padded to kNR.
template <typename TB>
void pack_b_panel(const TB* b, std::int64_t rsb, std::int64_t csb,
                  std::int64_t p0, std::int64_t kc, std::int64_t j0,
                  std::int64_t nc, float* bp) {
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t nr = std::min(kNR, nc - jr);
    float* dst = bp + jr * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const TB* src = b + (p0 + p) * rsb + (j0 + jr) * csb;
      for (std::int64_t j = 0; j < nr; ++j) dst[p * kNR + j] = load_f32(src + j * csb);
      for (std::int64_t j = nr; j < kNR; ++j) dst[p * kNR + j] = 0.0f;
    }
  }
}

// acc[kMR][kNR] += Ap · Bp over kc steps.
#if defined(__GNUC__) || defined(__clang__)
// One vector register file's worth of accumulators: kMR row vectors of kNR
// lanes each, updated by broadcast(a) * b FMAs. Writing the tile with vector
// extensions (rather than hoping the auto-vectorizer picks the right axis)
// is what keeps the accumulators in registers across the k loop. aligned(4)
// lets the loads come straight off the float-aligned packed panels.
using VecNR = float __attribute__((vector_size(sizeof(float) * kNR),
                                   aligned(alignof(float))));

void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float* __restrict acc) {
  static_assert(kMR == 8, "accumulator bank below is written for kMR == 8");
  VecNR c0{}, c1{}, c2{}, c3{}, c4{}, c5{}, c6{}, c7{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMR;
    const VecNR b = *reinterpret_cast<const VecNR*>(bp + p * kNR);
    c0 += arow[0] * b;
    c1 += arow[1] * b;
    c2 += arow[2] * b;
    c3 += arow[3] * b;
    c4 += arow[4] * b;
    c5 += arow[5] * b;
    c6 += arow[6] * b;
    c7 += arow[7] * b;
  }
  const VecNR cs[kMR] = {c0, c1, c2, c3, c4, c5, c6, c7};
  for (std::int64_t i = 0; i < kMR; ++i) {
    *reinterpret_cast<VecNR*>(acc + i * kNR) = cs[i];
  }
}
#else
void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float* __restrict acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMR;
    const float* brow = bp + p * kNR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      for (std::int64_t j = 0; j < kNR; ++j) {
        acc[i * kNR + j] += arow[i] * brow[j];
      }
    }
  }
}
#endif

#if PTDP_GEMM_NATIVE_BF16
// Native bf16 path: when BOTH operands are bf16 and the kernel grants this
// process the AMX tile state (a one-time arch_prctl), the packed panels
// stay bf16 and the micro-tile contraction runs on the AMX matrix engine —
// tdpbf16ps multiplies a 16x32 bf16 A-tile by a 32-wide-by-16 pair-
// interleaved B-tile into a 16x16 f32 accumulator tile, ~5x the FLOP/s of
// the f32 FMA pipes on this substrate (measured in BENCH_tensor_ops.json).
// Numerics: bf16 products are exact in f32 (8-bit mantissas) and the tile
// engine accumulates in f32 in a fixed order, so per-element error is
// comparable to the widen-then-FMA path and the bf16 tolerance table
// covers both. The cache blocking (kMC/kKC/kNC) and the row-panel
// parallel_for partition are IDENTICAL to the f32 driver, and each C
// element's accumulation order is a pure function of the shape — results
// stay bitwise-deterministic across thread counts and run-to-run.
//
// Tile geometry: a 32x32 C block is held as 2x2 accumulator tiles
// (tmm0..3); each k step of 32 loads two A tiles (tmm4,5: 16 rows x 32
// bf16) and two B tiles (tmm6,7: 16 pair-rows x 16 columns x 2) and issues
// four tdpbf16ps. A packs row-major [row][k] (rows padded to 32, k padded
// to a multiple of 32 with zeros); B packs pair-interleaved
// [k/2][col][k&1] so consecutive k pairs sit in one tile row.

constexpr std::int64_t kAmxTile = 16;  // tile rows / f32 columns
constexpr std::int64_t kAmxMR = 32;    // C block rows  (2 tiles)
constexpr std::int64_t kAmxNR = 32;    // C block cols  (2 tiles)
constexpr std::int64_t kAmxK = 32;     // bf16 k-steps per tile op

// One-time per-process request for the AMX tile-data XSTATE component.
bool amx_tile_ready() {
  static const bool ok =
      syscall(SYS_arch_prctl, /*ARCH_REQ_XCOMP_PERM=*/0x1023,
              /*XFEATURE_XTILEDATA=*/18) == 0;
  return ok;
}

// All eight tiles configured 16 rows x 64 bytes; loaded once per thread
// (tile config is per-thread XSTATE and context-switches with it).
struct AmxTileConfig {
  std::uint8_t palette = 1, start_row = 0;
  std::uint8_t reserved[14] = {};
  std::uint16_t colsb[16] = {};
  std::uint8_t rows[16] = {};
};

void amx_configure_thread() {
  thread_local bool configured = false;
  if (configured) return;
  AmxTileConfig cfg;
  for (int t = 0; t < 8; ++t) {
    cfg.rows[t] = kAmxTile;
    cfg.colsb[t] = 64;
  }
  _tile_loadconfig(&cfg);
  configured = true;
}

// A block [i0, i0+mc) x [p0, p0+kc) packed row-major with row stride
// kc_pad bf16 (k zero-padded to a multiple of kAmxK, rows to kAmxMR).
void pack_a_block_bf16(const bf16_t* a, std::int64_t rsa, std::int64_t csa,
                       std::int64_t i0, std::int64_t mc, std::int64_t p0,
                       std::int64_t kc, std::int64_t kc_pad, bf16_t* ap) {
  const std::int64_t mc_pad = (mc + kAmxMR - 1) / kAmxMR * kAmxMR;
  for (std::int64_t i = 0; i < mc_pad; ++i) {
    bf16_t* dst = ap + i * kc_pad;
    if (i < mc) {
      const bf16_t* src = a + (i0 + i) * rsa + p0 * csa;
      for (std::int64_t p = 0; p < kc; ++p) dst[p] = src[p * csa];
    } else {
      std::fill_n(dst, kc, bf16_t{0});
    }
    std::fill_n(dst + kc, kc_pad - kc, bf16_t{0});
  }
}

// B panel [p0, p0+kc) x [j0, j0+nc) packed pair-interleaved:
// bp[(p/2) * nc_pad * 2 + j * 2 + (p&1)], zero-padded to (kc_pad, nc_pad).
void pack_b_panel_bf16(const bf16_t* b, std::int64_t rsb, std::int64_t csb,
                       std::int64_t p0, std::int64_t kc, std::int64_t kc_pad,
                       std::int64_t j0, std::int64_t nc, std::int64_t nc_pad,
                       bf16_t* bp) {
  std::fill_n(bp, (kc_pad / 2) * nc_pad * 2, bf16_t{0});
  for (std::int64_t p = 0; p < kc; ++p) {
    const bf16_t* src = b + (p0 + p) * rsb + j0 * csb;
    bf16_t* dst = bp + (p / 2) * nc_pad * 2 + (p & 1);
    for (std::int64_t j = 0; j < nc; ++j) dst[j * 2] = src[j * csb];
  }
}

void gemm_strided_bf16_native(std::int64_t m, std::int64_t n, std::int64_t k,
                              const bf16_t* a, std::int64_t rsa,
                              std::int64_t csa, const bf16_t* b,
                              std::int64_t rsb, std::int64_t csb, float* c) {
  const std::int64_t nc_max = std::min(n, kNC);
  const std::int64_t nc_pad_cap = (nc_max + kAmxNR - 1) / kAmxNR * kAmxNR;
  const std::int64_t kc_pad_cap = (kKC + kAmxK - 1) / kAmxK * kAmxK;
  std::vector<bf16_t> bp(
      static_cast<std::size_t>(kc_pad_cap / 2 * nc_pad_cap * 2));

  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    const std::int64_t nc_pad = (nc + kAmxNR - 1) / kAmxNR * kAmxNR;
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      const std::int64_t kc_pad = (kc + kAmxK - 1) / kAmxK * kAmxK;
      pack_b_panel_bf16(b, rsb, csb, pc, kc, kc_pad, jc, nc, nc_pad, bp.data());

      const std::int64_t nblocks = (m + kMC - 1) / kMC;
      const std::int64_t block_flops = 2 * kMC * nc * kc;
      const std::int64_t grain =
          std::max<std::int64_t>(1, kGemmGrainFlops / std::max<std::int64_t>(
                                                          block_flops, 1));
      parallel_for(0, nblocks, grain, [&](std::int64_t blk0, std::int64_t blk1) {
        amx_configure_thread();
        thread_local std::vector<bf16_t> ap;
        ap.resize(static_cast<std::size_t>(
            (kMC + kAmxMR - 1) / kAmxMR * kAmxMR * kc_pad_cap));
        for (std::int64_t blk = blk0; blk < blk1; ++blk) {
          const std::int64_t i0 = blk * kMC;
          const std::int64_t mc = std::min(kMC, m - i0);
          pack_a_block_bf16(a, rsa, csa, i0, mc, pc, kc, kc_pad, ap.data());
          for (std::int64_t jr = 0; jr < nc; jr += kAmxNR) {
            const std::int64_t nr = std::min(kAmxNR, nc - jr);
            const bf16_t* bcol = bp.data() + jr * 2;
            for (std::int64_t ir = 0; ir < mc; ir += kAmxMR) {
              const std::int64_t mr = std::min(kAmxMR, mc - ir);
              const bf16_t* arow = ap.data() + ir * kc_pad;
              float* ctile = c + (i0 + ir) * n + jc + jr;
              const bool full = mr == kAmxMR && nr == kAmxNR;
              if (full && pc > 0) {
                // Accumulate straight into C: seed the tiles from it.
                _tile_loadd(0, ctile, n * 4);
                _tile_loadd(1, ctile + kAmxTile, n * 4);
                _tile_loadd(2, ctile + kAmxTile * n, n * 4);
                _tile_loadd(3, ctile + kAmxTile * n + kAmxTile, n * 4);
              } else {
                _tile_zero(0);
                _tile_zero(1);
                _tile_zero(2);
                _tile_zero(3);
              }
              for (std::int64_t p = 0; p < kc_pad; p += kAmxK) {
                _tile_loadd(4, arow + p, kc_pad * 2);
                _tile_loadd(5, arow + kAmxTile * kc_pad + p, kc_pad * 2);
                const bf16_t* bk = bcol + (p / 2) * nc_pad * 2;
                _tile_loadd(6, bk, nc_pad * 4);
                _tile_loadd(7, bk + kAmxTile * 2, nc_pad * 4);
                _tile_dpbf16ps(0, 4, 6);
                _tile_dpbf16ps(1, 4, 7);
                _tile_dpbf16ps(2, 5, 6);
                _tile_dpbf16ps(3, 5, 7);
              }
              if (full) {
                _tile_stored(0, ctile, n * 4);
                _tile_stored(1, ctile + kAmxTile, n * 4);
                _tile_stored(2, ctile + kAmxTile * n, n * 4);
                _tile_stored(3, ctile + kAmxTile * n + kAmxTile, n * 4);
              } else {
                // Edge block: land in scratch, then copy/add the live part.
                alignas(64) float acc[kAmxMR * kAmxNR];
                _tile_stored(0, acc, kAmxNR * 4);
                _tile_stored(1, acc + kAmxTile, kAmxNR * 4);
                _tile_stored(2, acc + kAmxTile * kAmxNR, kAmxNR * 4);
                _tile_stored(3, acc + kAmxTile * kAmxNR + kAmxTile, kAmxNR * 4);
                for (std::int64_t i = 0; i < mr; ++i) {
                  float* crow = c + (i0 + ir + i) * n + jc + jr;
                  if (pc == 0) {
                    for (std::int64_t j = 0; j < nr; ++j)
                      crow[j] = acc[i * kAmxNR + j];
                  } else {
                    for (std::int64_t j = 0; j < nr; ++j)
                      crow[j] += acc[i * kAmxNR + j];
                  }
                }
              }
            }
          }
        }
      });
    }
  }
}
#endif  // PTDP_GEMM_NATIVE_BF16

template <typename TA, typename TB>
void gemm_strided(std::int64_t m, std::int64_t n, std::int64_t k, const TA* a,
                  std::int64_t rsa, std::int64_t csa, const TB* b,
                  std::int64_t rsb, std::int64_t csb, float* c) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Empty contraction: the product is the zero matrix, and C may be
    // uninitialized storage.
    std::fill_n(c, m * n, 0.0f);
    return;
  }
#if PTDP_GEMM_NATIVE_BF16
  if constexpr (std::is_same_v<TA, bf16_t> && std::is_same_v<TB, bf16_t>) {
    if (amx_tile_ready()) {
      gemm_strided_bf16_native(m, n, k, a, rsa, csa, b, rsb, csb, c);
      return;
    }
  }
#endif
  const std::int64_t nc_max = std::min(n, kNC);
  const std::int64_t nc_padded = (nc_max + kNR - 1) / kNR * kNR;
  std::vector<float> bp(static_cast<std::size_t>(kKC * nc_padded));

  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      pack_b_panel(b, rsb, csb, pc, kc, jc, nc, bp.data());

      const std::int64_t nblocks = (m + kMC - 1) / kMC;
      const std::int64_t block_flops = 2 * kMC * nc * kc;
      const std::int64_t grain =
          std::max<std::int64_t>(1, kGemmGrainFlops / std::max<std::int64_t>(
                                                          block_flops, 1));
      parallel_for(0, nblocks, grain, [&](std::int64_t blk0, std::int64_t blk1) {
        thread_local std::vector<float> ap;
        ap.resize(static_cast<std::size_t>(kMC * kKC));
        for (std::int64_t blk = blk0; blk < blk1; ++blk) {
          const std::int64_t i0 = blk * kMC;
          const std::int64_t mc = std::min(kMC, m - i0);
          pack_a_block(a, rsa, csa, i0, mc, pc, kc, ap.data());
          for (std::int64_t jr = 0; jr < nc; jr += kNR) {
            const std::int64_t nr = std::min(kNR, nc - jr);
            const float* bsliver = bp.data() + jr * kc;
            for (std::int64_t ir = 0; ir < mc; ir += kMR) {
              const std::int64_t mr = std::min(kMR, mc - ir);
              float acc[kMR * kNR] = {};
              micro_kernel(kc, ap.data() + ir * kc, bsliver, acc);
              for (std::int64_t i = 0; i < mr; ++i) {
                float* crow = c + (i0 + ir + i) * n + jc + jr;
                if (pc == 0) {
                  // First k-panel overwrites (beta = 0); later panels add.
                  for (std::int64_t j = 0; j < nr; ++j) crow[j] = acc[i * kNR + j];
                } else {
                  for (std::int64_t j = 0; j < nr; ++j) crow[j] += acc[i * kNR + j];
                }
              }
            }
          }
        }
      });
    }
  }
}

// Runs f(pa, pb) with each pointer typed to the tensor's storage dtype —
// the one place matmul/bmm fan out over the four (f32|bf16)² input
// combinations. The output is always f32 (fp32 accumulate).
template <typename F>
void dispatch_gemm(const Tensor& a, const Tensor& b, F&& f) {
  const bool a16 = a.dtype() == DType::kBf16;
  const bool b16 = b.dtype() == DType::kBf16;
  if (!a16 && !b16) {
    f(a.data().data(), b.data().data());
  } else if (!a16 && b16) {
    f(a.data().data(), b.data_bf16().data());
  } else if (a16 && !b16) {
    f(a.data_bf16().data(), b.data().data());
  } else {
    f(a.data_bf16().data(), b.data_bf16().data());
  }
}

void check_2d(const Tensor& t, const char* what) {
  PTDP_CHECK_EQ(t.ndim(), 2) << what << " must be 2-D, got " << t.shape_str();
}
void check_3d(const Tensor& t, const char* what) {
  PTDP_CHECK_EQ(t.ndim(), 3) << what << " must be 3-D, got " << t.shape_str();
}

// Rows/cols split for "[..., n]" tensors.
std::int64_t leading_rows(const Tensor& t) {
  PTDP_CHECK_GE(t.ndim(), 1);
  return t.numel() / t.dim(-1);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul lhs");
  check_2d(b, "matmul rhs");
  PTDP_CHECK_EQ(a.dim(1), b.dim(0)) << a.shape_str() << " x " << b.shape_str();
  const std::int64_t m = a.dim(0), n = b.dim(1), k = a.dim(1);
  Tensor c = Tensor::empty({m, n});
  dispatch_gemm(a, b, [&](const auto* pa, const auto* pb) {
    gemm_strided(m, n, k, pa, k, 1, pb, n, 1, c.data().data());
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_nt lhs");
  check_2d(b, "matmul_nt rhs");
  PTDP_CHECK_EQ(a.dim(1), b.dim(1)) << a.shape_str() << " x " << b.shape_str() << "^T";
  const std::int64_t m = a.dim(0), n = b.dim(0), k = a.dim(1);
  Tensor c = Tensor::empty({m, n});
  dispatch_gemm(a, b, [&](const auto* pa, const auto* pb) {
    gemm_strided(m, n, k, pa, k, 1, pb, 1, k, c.data().data());
  });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_tn lhs");
  check_2d(b, "matmul_tn rhs");
  PTDP_CHECK_EQ(a.dim(0), b.dim(0)) << a.shape_str() << "^T x " << b.shape_str();
  const std::int64_t m = a.dim(1), n = b.dim(1), k = a.dim(0);
  Tensor c = Tensor::empty({m, n});
  dispatch_gemm(a, b, [&](const auto* pa, const auto* pb) {
    gemm_strided(m, n, k, pa, 1, m, pb, n, 1, c.data().data());
  });
  return c;
}

namespace {

// Batched GEMM over per-variant strides (NN/NT/TN encode their transpose
// in (rsa, csa, rsb, csb), exactly as the 2-D wrappers do).
Tensor bmm_impl(const Tensor& a, const Tensor& b, std::int64_t m, std::int64_t n,
                std::int64_t k, std::int64_t rsa, std::int64_t csa,
                std::int64_t rsb, std::int64_t csb) {
  const std::int64_t batches = a.dim(0);
  Tensor c = Tensor::empty({batches, m, n});
  float* pc = c.data().data();
  const std::int64_t sa = a.dim(1) * a.dim(2);
  const std::int64_t sb = b.dim(1) * b.dim(2);
  const std::int64_t sc = m * n;
  // Batches are embarrassingly parallel; when a single batch is big enough
  // to fan out on its own (range <= grain here), the per-batch GEMM
  // parallelizes over row panels instead.
  const std::int64_t batch_flops = 2 * m * n * k;
  const std::int64_t grain = std::max<std::int64_t>(
      1, kGemmGrainFlops / std::max<std::int64_t>(batch_flops, 1));
  dispatch_gemm(a, b, [&](const auto* pa, const auto* pb) {
    parallel_for(0, batches, grain, [&](std::int64_t b0, std::int64_t b1) {
      for (std::int64_t batch = b0; batch < b1; ++batch) {
        gemm_strided(m, n, k, pa + batch * sa, rsa, csa, pb + batch * sb, rsb,
                     csb, pc + batch * sc);
      }
    });
  });
  return c;
}

}  // namespace

Tensor bmm(const Tensor& a, const Tensor& b) {
  check_3d(a, "bmm lhs");
  check_3d(b, "bmm rhs");
  PTDP_CHECK_EQ(a.dim(0), b.dim(0));
  PTDP_CHECK_EQ(a.dim(2), b.dim(1)) << a.shape_str() << " x " << b.shape_str();
  const std::int64_t m = a.dim(1), n = b.dim(2), k = a.dim(2);
  return bmm_impl(a, b, m, n, k, k, 1, n, 1);
}

Tensor bmm_nt(const Tensor& a, const Tensor& b) {
  check_3d(a, "bmm_nt lhs");
  check_3d(b, "bmm_nt rhs");
  PTDP_CHECK_EQ(a.dim(0), b.dim(0));
  PTDP_CHECK_EQ(a.dim(2), b.dim(2)) << a.shape_str() << " x " << b.shape_str() << "^T";
  const std::int64_t m = a.dim(1), n = b.dim(1), k = a.dim(2);
  return bmm_impl(a, b, m, n, k, k, 1, 1, k);
}

Tensor bmm_tn(const Tensor& a, const Tensor& b) {
  check_3d(a, "bmm_tn lhs");
  check_3d(b, "bmm_tn rhs");
  PTDP_CHECK_EQ(a.dim(0), b.dim(0));
  PTDP_CHECK_EQ(a.dim(1), b.dim(1)) << a.shape_str() << "^T x " << b.shape_str();
  const std::int64_t m = a.dim(2), n = b.dim(2), k = a.dim(1);
  return bmm_impl(a, b, m, n, k, 1, m, n, 1);
}

// ---- elementwise ---------------------------------------------------------------

namespace {
template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F f) {
  PTDP_CHECK(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  Tensor out = Tensor::empty(a.shape());
  auto da = a.data();
  auto db = b.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(da.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) dout[i] = f(da[i], db[i]);
               });
  return out;
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; });
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor out = Tensor::empty(a.shape());
  auto da = a.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(da.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) dout[i] = alpha * da[i];
               });
  return out;
}

void add_(Tensor& a, const Tensor& b) {
  PTDP_CHECK(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  auto da = a.data();
  auto db = b.data();
  parallel_for(0, static_cast<std::int64_t>(da.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) da[i] += db[i];
               });
}

void axpy_(Tensor& y, float alpha, const Tensor& x) {
  PTDP_CHECK(y.same_shape(x)) << y.shape_str() << " vs " << x.shape_str();
  auto dy = y.data();
  auto dx = x.data();
  parallel_for(0, static_cast<std::int64_t>(dy.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) dy[i] += alpha * dx[i];
               });
}

void scale_(Tensor& a, float alpha) {
  auto da = a.data();
  parallel_for(0, static_cast<std::int64_t>(da.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) da[i] *= alpha;
               });
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  PTDP_CHECK_EQ(bias.ndim(), 1);
  PTDP_CHECK_EQ(x.dim(-1), bias.dim(0));
  const std::int64_t rows = leading_rows(x);
  const std::int64_t n = x.dim(-1);
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto db = bias.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      for (std::int64_t j = 0; j < n; ++j) {
        dout[static_cast<std::size_t>(r * n + j)] =
            dx[static_cast<std::size_t>(r * n + j)] + db[static_cast<std::size_t>(j)];
      }
    }
  });
  return out;
}

Tensor bias_grad(const Tensor& dy) {
  const std::int64_t rows = leading_rows(dy);
  const std::int64_t n = dy.dim(-1);
  Tensor g({n});
  auto ddy = dy.data();
  auto dg = g.data();
  // Parallel over column stripes: each output element is reduced serially
  // over rows inside one chunk, so the sum order (and bit pattern) matches
  // the serial kernel for every thread count.
  parallel_for(0, n, row_grain(rows), [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t j = j0; j < j1; ++j) {
        dg[static_cast<std::size_t>(j)] += ddy[static_cast<std::size_t>(r * n + j)];
      }
    }
  });
  return g;
}

// ---- activations ---------------------------------------------------------------

namespace {
inline float gelu_scalar(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}
inline float gelu_grad_scalar(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

std::atomic<bool>& gelu_exact_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("PTDP_GELU_EXACT");
    return env != nullptr && env[0] == '1' && env[1] == '\0';
  }();
  return flag;
}

#if defined(__GNUC__) || defined(__clang__)
// Vectorized GeLU (ops.hpp gelu_exact() contract). The scalar path above
// spends ~95% of its time in libm tanh; here tanh(u) is evaluated as
// sign(u) * (1 - e) / (1 + e) with e = exp(-2|u|), and exp through the
// classic 2^n * 2^f split: n = round(t), t = v*log2(e), with the round
// done by the add-magic-constant trick (2^23 + 2^22 puts any |t| < 2^21
// in the 1-ulp-per-integer regime, so the float's low mantissa bits ARE
// the integer) and 2^f a degree-5 polynomial on f in [-0.5, 0.5].
// Everything is elementwise, so results are bitwise independent of both
// chunking and lane position — thread-count determinism comes for free.
using VecNI = std::int32_t __attribute__((vector_size(sizeof(float) * kNR),
                                          aligned(alignof(float))));

inline VecNR gelu_loadu(const float* p) {
  VecNR v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline VecNR gelu_splat(float x) {
  VecNR v;
  for (std::int64_t j = 0; j < kNR; ++j) v[j] = x;
  return v;
}

// exp(v) for v <= 0. Inputs are clamped at -87 (exp(-87) ~ 1.6e-38, still
// a normal float) so the exponent bit-build below never underflows.
inline VecNR exp_neg_vec(VecNR v) {
  const VecNR lo = gelu_splat(-87.0f);
  v = v < lo ? lo : v;
  const VecNR t = v * 1.4426950408889634f;  // log2(e)
  const VecNR magic = gelu_splat(12582912.0f);  // 2^23 + 2^22
  const VecNR r = t + magic;
  const VecNI n = (VecNI)r - (VecNI)magic;  // same-size vector cast = bit view
  const VecNR f = t - (r - magic);          // in [-0.5, 0.5]
  // 2^f: minimax-ish Taylor in ln2 * f, max relative error ~2e-8.
  VecNR p = gelu_splat(0.00133335581f);
  p = p * f + 0.00961812911f;
  p = p * f + 0.0555041087f;
  p = p * f + 0.240226507f;
  p = p * f + 0.693147180f;
  p = p * f + 1.0f;
  const VecNI bits = (n + 127) << 23;  // 2^n
  return p * (VecNR)bits;
}

inline VecNR tanh_vec(VecNR u) {
  const VecNI sign_mask = (VecNI)u & static_cast<std::int32_t>(0x80000000);
  const VecNR au = (VecNR)((VecNI)u & 0x7fffffff);
  const VecNR e = exp_neg_vec(-2.0f * au);
  const VecNR t = (1.0f - e) / (1.0f + e);
  return (VecNR)((VecNI)t | sign_mask);
}

inline VecNR gelu_vec(VecNR x) {
  const VecNR u = kGeluC * (x + kGeluA * x * x * x);
  return 0.5f * x * (1.0f + tanh_vec(u));
}

inline VecNR gelu_grad_vec(VecNR x) {
  const VecNR u = kGeluC * (x + kGeluA * x * x * x);
  const VecNR t = tanh_vec(u);
  const VecNR du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}
#endif  // __GNUC__ || __clang__

// out[j] = GeLU(x[j] + bias[j]) over [0, n); bias may be null. The tail
// (< kNR elements) runs the SAME vector code over a zero-padded buffer, so
// every element sees one arithmetic sequence regardless of where chunk
// boundaries fall.
void gelu_forward_span(const float* x, const float* bias, float* out,
                       std::int64_t n) {
#if defined(__GNUC__) || defined(__clang__)
  if (!gelu_exact_flag().load(std::memory_order_relaxed)) {
    std::int64_t j = 0;
    for (; j + kNR <= n; j += kNR) {
      VecNR v = gelu_loadu(x + j);
      if (bias != nullptr) v += gelu_loadu(bias + j);
      const VecNR g = gelu_vec(v);
      std::memcpy(out + j, &g, sizeof g);
    }
    if (j < n) {
      const std::int64_t nr = n - j;
      float buf[kNR] = {};
      std::memcpy(buf, x + j, static_cast<std::size_t>(nr) * sizeof(float));
      VecNR v = gelu_loadu(buf);
      if (bias != nullptr) {
        float bbuf[kNR] = {};
        std::memcpy(bbuf, bias + j, static_cast<std::size_t>(nr) * sizeof(float));
        v += gelu_loadu(bbuf);
      }
      const VecNR g = gelu_vec(v);
      std::memcpy(out + j, &g, static_cast<std::size_t>(nr) * sizeof(float));
    }
    return;
  }
#endif
  if (bias != nullptr) {
    for (std::int64_t j = 0; j < n; ++j) out[j] = gelu_scalar(x[j] + bias[j]);
  } else {
    for (std::int64_t j = 0; j < n; ++j) out[j] = gelu_scalar(x[j]);
  }
}

/// out[j] = dy[j] * GeLU'(x[j] + bias[j]) over [0, n); bias may be null.
void gelu_grad_span(const float* dy, const float* x, const float* bias,
                    float* out, std::int64_t n) {
#if defined(__GNUC__) || defined(__clang__)
  if (!gelu_exact_flag().load(std::memory_order_relaxed)) {
    std::int64_t j = 0;
    for (; j + kNR <= n; j += kNR) {
      VecNR v = gelu_loadu(x + j);
      if (bias != nullptr) v += gelu_loadu(bias + j);
      const VecNR g = gelu_loadu(dy + j) * gelu_grad_vec(v);
      std::memcpy(out + j, &g, sizeof g);
    }
    if (j < n) {
      const std::int64_t nr = n - j;
      float buf[kNR] = {};
      float dbuf[kNR] = {};
      std::memcpy(buf, x + j, static_cast<std::size_t>(nr) * sizeof(float));
      std::memcpy(dbuf, dy + j, static_cast<std::size_t>(nr) * sizeof(float));
      VecNR v = gelu_loadu(buf);
      if (bias != nullptr) {
        float bbuf[kNR] = {};
        std::memcpy(bbuf, bias + j, static_cast<std::size_t>(nr) * sizeof(float));
        v += gelu_loadu(bbuf);
      }
      const VecNR g = gelu_loadu(dbuf) * gelu_grad_vec(v);
      std::memcpy(out + j, &g, static_cast<std::size_t>(nr) * sizeof(float));
    }
    return;
  }
#endif
  if (bias != nullptr) {
    for (std::int64_t j = 0; j < n; ++j) {
      out[j] = dy[j] * gelu_grad_scalar(x[j] + bias[j]);
    }
  } else {
    for (std::int64_t j = 0; j < n; ++j) out[j] = dy[j] * gelu_grad_scalar(x[j]);
  }
}
}  // namespace

bool gelu_exact() { return gelu_exact_flag().load(std::memory_order_relaxed); }

bool set_gelu_exact(bool on) {
  return gelu_exact_flag().exchange(on, std::memory_order_relaxed);
}

Tensor gelu(const Tensor& x) {
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(dx.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 gelu_forward_span(dx.data() + i0, nullptr, dout.data() + i0,
                                   i1 - i0);
               });
  return out;
}

Tensor gelu_backward(const Tensor& dy, const Tensor& x) {
  PTDP_CHECK(dy.same_shape(x));
  Tensor out = Tensor::empty(x.shape());
  auto ddy = dy.data();
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(dx.size()), kElemGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 gelu_grad_span(ddy.data() + i0, dx.data() + i0, nullptr,
                                dout.data() + i0, i1 - i0);
               });
  return out;
}

// Stays serial: the Bernoulli draws consume one RNG stream in element order,
// so splitting the loop would change which element sees which draw.
Tensor dropout(const Tensor& x, float p, Rng& rng, Tensor& mask) {
  PTDP_CHECK_GE(p, 0.0f);
  PTDP_CHECK_LT(p, 1.0f);
  mask = Tensor::empty(x.shape());
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto dm = mask.data();
  auto dout = out.data();
  if (p == 0.0f) {
    std::fill(dm.begin(), dm.end(), 1.0f);
    std::copy(dx.begin(), dx.end(), dout.begin());
    return out;
  }
  const float keep_scale = 1.0f / (1.0f - p);
  for (std::size_t i = 0; i < dx.size(); ++i) {
    const float m = rng.next_bernoulli(p) ? 0.0f : keep_scale;
    dm[i] = m;
    dout[i] = dx[i] * m;
  }
  return out;
}

Tensor dropout_backward(const Tensor& dy, const Tensor& mask) { return mul(dy, mask); }

// ---- normalization -------------------------------------------------------------

LayerNormResult layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                          float eps) {
  PTDP_CHECK_EQ(gamma.ndim(), 1);
  PTDP_CHECK_EQ(beta.ndim(), 1);
  const std::int64_t n = x.dim(-1);
  PTDP_CHECK_EQ(gamma.dim(0), n);
  PTDP_CHECK_EQ(beta.dim(0), n);
  const std::int64_t rows = leading_rows(x);

  LayerNormResult result{Tensor::empty(x.shape()), Tensor::empty({rows}),
                         Tensor::empty({rows})};
  auto dx = x.data();
  auto dg = gamma.data();
  auto db = beta.data();
  auto dy = result.y.data();
  auto dmean = result.mean.data();
  auto drstd = result.rstd.data();

  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* row = dx.data() + r * n;
      float sum = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) sum += row[j];
      const float mean = sum / static_cast<float>(n);
      float var = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        const float d = row[j] - mean;
        var += d * d;
      }
      var /= static_cast<float>(n);
      const float rstd = 1.0f / std::sqrt(var + eps);
      dmean[static_cast<std::size_t>(r)] = mean;
      drstd[static_cast<std::size_t>(r)] = rstd;
      float* out_row = dy.data() + r * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float xhat = (row[j] - mean) * rstd;
        out_row[j] =
            xhat * dg[static_cast<std::size_t>(j)] + db[static_cast<std::size_t>(j)];
      }
    }
  });
  return result;
}

LayerNormGrads layernorm_backward(const Tensor& dy, const Tensor& x,
                                  const Tensor& gamma, const Tensor& mean,
                                  const Tensor& rstd) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = leading_rows(x);
  PTDP_CHECK(dy.same_shape(x));
  PTDP_CHECK_EQ(mean.numel(), rows);
  PTDP_CHECK_EQ(rstd.numel(), rows);

  // dx is fully overwritten; dgamma/dbeta accumulate and must start at zero.
  LayerNormGrads grads{Tensor::empty(x.shape()), Tensor({n}), Tensor({n})};
  auto ddy = dy.data();
  auto dx = x.data();
  auto dg = gamma.data();
  auto dmean = mean.data();
  auto drstd = rstd.data();
  auto out_dx = grads.dx.data();
  auto out_dgamma = grads.dgamma.data();
  auto out_dbeta = grads.dbeta.data();

  // Pass 1 — dx, parallel over rows (each row's two reductions stay serial
  // inside its chunk).
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* xrow = dx.data() + r * n;
      const float* dyrow = ddy.data() + r * n;
      float* dxrow = out_dx.data() + r * n;
      const float m = dmean[static_cast<std::size_t>(r)];
      const float rs = drstd[static_cast<std::size_t>(r)];

      // dxhat = dy * gamma; dx = rstd*(dxhat - mean(dxhat) - xhat*mean(dxhat*xhat))
      float sum_dxhat = 0.0f;
      float sum_dxhat_xhat = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        const float xhat = (xrow[j] - m) * rs;
        const float dxhat = dyrow[j] * dg[static_cast<std::size_t>(j)];
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
      }
      const float inv_n = 1.0f / static_cast<float>(n);
      for (std::int64_t j = 0; j < n; ++j) {
        const float xhat = (xrow[j] - m) * rs;
        const float dxhat = dyrow[j] * dg[static_cast<std::size_t>(j)];
        dxrow[j] = rs * (dxhat - inv_n * sum_dxhat - xhat * inv_n * sum_dxhat_xhat);
      }
    }
  });

  // Pass 2 — dgamma/dbeta, parallel over column stripes; the row reduction
  // per column runs serially in ascending order for determinism.
  parallel_for(0, n, row_grain(rows), [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* xrow = dx.data() + r * n;
      const float* dyrow = ddy.data() + r * n;
      const float m = dmean[static_cast<std::size_t>(r)];
      const float rs = drstd[static_cast<std::size_t>(r)];
      for (std::int64_t j = j0; j < j1; ++j) {
        const float xhat = (xrow[j] - m) * rs;
        out_dgamma[static_cast<std::size_t>(j)] += dyrow[j] * xhat;
        out_dbeta[static_cast<std::size_t>(j)] += dyrow[j];
      }
    }
  });
  return grads;
}

// ---- softmax -------------------------------------------------------------------

Tensor softmax_lastdim(const Tensor& x) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = leading_rows(x);
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* row = dx.data() + r * n;
      float* orow = dout.data() + r * n;
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < n; ++j) mx = std::max(mx, row[j]);
      float denom = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        orow[j] = std::exp(row[j] - mx);
        denom += orow[j];
      }
      const float inv = 1.0f / denom;
      for (std::int64_t j = 0; j < n; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Tensor softmax_backward(const Tensor& y, const Tensor& dy) {
  PTDP_CHECK(y.same_shape(dy));
  const std::int64_t n = y.dim(-1);
  const std::int64_t rows = leading_rows(y);
  Tensor out = Tensor::empty(y.shape());
  auto dyv = dy.data();
  auto yv = y.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* yrow = yv.data() + r * n;
      const float* dyrow = dyv.data() + r * n;
      float* orow = dout.data() + r * n;
      float dot = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) dot += yrow[j] * dyrow[j];
      for (std::int64_t j = 0; j < n; ++j) orow[j] = yrow[j] * (dyrow[j] - dot);
    }
  });
  return out;
}

// ---- fused kernels -------------------------------------------------------------

Tensor fused_bias_gelu(const Tensor& x, const Tensor& bias) {
  PTDP_CHECK_EQ(bias.ndim(), 1);
  PTDP_CHECK_EQ(x.dim(-1), bias.dim(0));
  const std::int64_t rows = leading_rows(x);
  const std::int64_t n = x.dim(-1);
  Tensor out = Tensor::empty(x.shape());
  auto dx = x.data();
  auto db = bias.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      gelu_forward_span(dx.data() + r * n, db.data(), dout.data() + r * n, n);
    }
  });
  return out;
}

Tensor fused_bias_gelu_backward(const Tensor& dy, const Tensor& x, const Tensor& bias,
                                Tensor& dbias) {
  PTDP_CHECK(dy.same_shape(x));
  PTDP_CHECK(dbias.same_shape(bias));
  const std::int64_t rows = leading_rows(x);
  const std::int64_t n = x.dim(-1);
  Tensor out = Tensor::empty(x.shape());
  auto ddy = dy.data();
  auto dx = x.data();
  auto db = bias.data();
  auto ddb = dbias.data();
  auto dout = out.data();
  // dX in parallel over rows; the bias-grad reduction then runs over column
  // stripes of the already-computed dX so each ddb[j] accumulates rows in
  // ascending order no matter the thread count.
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      gelu_grad_span(ddy.data() + r * n, dx.data() + r * n, db.data(),
                     dout.data() + r * n, n);
    }
  });
  parallel_for(0, n, row_grain(rows), [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* orow = dout.data() + r * n;
      for (std::int64_t j = j0; j < j1; ++j) {
        ddb[static_cast<std::size_t>(j)] += orow[j];
      }
    }
  });
  return out;
}

Tensor fused_bias_dropout_add(const Tensor& x, const Tensor& bias,
                              const Tensor& residual, float p, Rng& rng,
                              Tensor& mask) {
  PTDP_CHECK(x.same_shape(residual));
  Tensor biased = add_bias(x, bias);
  Tensor dropped = dropout(biased, p, rng, mask);
  add_(dropped, residual);
  return dropped;
}

Tensor fused_scale_causal_softmax(const Tensor& scores, float scl) {
  PTDP_CHECK_EQ(scores.ndim(), 3) << "scores must be [rows, sq, sk]";
  const std::int64_t rows = scores.dim(0);
  const std::int64_t sq = scores.dim(1);
  const std::int64_t sk = scores.dim(2);
  PTDP_CHECK_GE(sk, sq) << "causal mask requires sk >= sq";
  const std::int64_t shift = sk - sq;
  // Every element is written (masked tail gets explicit zeros).
  Tensor out = Tensor::empty(scores.shape());
  auto dx = scores.data();
  auto dout = out.data();
  parallel_for(0, rows * sq, row_grain(sk), [&](std::int64_t q0, std::int64_t q1) {
    for (std::int64_t q = q0; q < q1; ++q) {
      const std::int64_t i = q % sq;
      const float* row = dx.data() + q * sk;
      float* orow = dout.data() + q * sk;
      const std::int64_t valid = i + shift + 1;  // keys [0, valid) are visible
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < valid; ++j) mx = std::max(mx, scl * row[j]);
      float denom = 0.0f;
      for (std::int64_t j = 0; j < valid; ++j) {
        orow[j] = std::exp(scl * row[j] - mx);
        denom += orow[j];
      }
      const float inv = 1.0f / denom;
      for (std::int64_t j = 0; j < valid; ++j) orow[j] *= inv;
      for (std::int64_t j = valid; j < sk; ++j) orow[j] = 0.0f;
    }
  });
  return out;
}

Tensor fused_scale_mask_softmax(const Tensor& scores, const Tensor& mask, float scl) {
  PTDP_CHECK_EQ(scores.ndim(), 3) << "scores must be [rows, sq, sk]";
  PTDP_CHECK_EQ(mask.ndim(), 2);
  const std::int64_t rows = scores.dim(0);
  const std::int64_t sq = scores.dim(1);
  const std::int64_t sk = scores.dim(2);
  PTDP_CHECK_EQ(mask.dim(0), sq);
  PTDP_CHECK_EQ(mask.dim(1), sk);
  Tensor out = Tensor::empty(scores.shape());
  auto dx = scores.data();
  auto dm = mask.data();
  auto dout = out.data();
  parallel_for(0, rows * sq, row_grain(sk), [&](std::int64_t q0, std::int64_t q1) {
    for (std::int64_t q = q0; q < q1; ++q) {
      const std::int64_t i = q % sq;
      const float* row = dx.data() + q * sk;
      const float* mrow = dm.data() + i * sk;
      float* orow = dout.data() + q * sk;
      float mx = -std::numeric_limits<float>::infinity();
      bool any = false;
      for (std::int64_t j = 0; j < sk; ++j) {
        if (mrow[j] == 0.0f) {
          mx = std::max(mx, scl * row[j]);
          any = true;
        }
      }
      PTDP_CHECK(any) << "softmax row fully masked";
      float denom = 0.0f;
      for (std::int64_t j = 0; j < sk; ++j) {
        if (mrow[j] == 0.0f) {
          orow[j] = std::exp(scl * row[j] - mx);
          denom += orow[j];
        } else {
          orow[j] = 0.0f;
        }
      }
      const float inv = 1.0f / denom;
      for (std::int64_t j = 0; j < sk; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Tensor fused_scale_softmax_backward(const Tensor& y, const Tensor& dy, float scl) {
  Tensor dx = softmax_backward(y, dy);
  scale_(dx, scl);
  return dx;
}

// ---- embedding -----------------------------------------------------------------

Tensor embedding(const Tensor& table, std::span<const std::int32_t> ids) {
  PTDP_CHECK_EQ(table.ndim(), 2);
  const std::int64_t vocab = table.dim(0);
  const std::int64_t h = table.dim(1);
  Tensor out = Tensor::empty({static_cast<std::int64_t>(ids.size()), h});
  auto dt = table.data();
  auto dout = out.data();
  parallel_for(0, static_cast<std::int64_t>(ids.size()), row_grain(h),
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) {
                   const std::int32_t id = ids[static_cast<std::size_t>(i)];
                   PTDP_CHECK(id >= 0 && id < vocab)
                       << "token id " << id << " out of range";
                   std::copy_n(dt.data() + static_cast<std::int64_t>(id) * h, h,
                               dout.data() + i * h);
                 }
               });
  return out;
}

// Stays serial: duplicate ids scatter-add into the same table row, and the
// accumulation order must not depend on the thread count.
void embedding_backward(const Tensor& dy, std::span<const std::int32_t> ids,
                        Tensor& dtable) {
  PTDP_CHECK_EQ(dtable.ndim(), 2);
  const std::int64_t h = dtable.dim(1);
  PTDP_CHECK_EQ(dy.numel(), static_cast<std::int64_t>(ids.size()) * h);
  auto ddy = dy.data();
  auto dt = dtable.data();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int64_t id = ids[i];
    const float* src = ddy.data() + static_cast<std::int64_t>(i) * h;
    float* dst = dt.data() + id * h;
    for (std::int64_t j = 0; j < h; ++j) dst[j] += src[j];
  }
}

// ---- loss ----------------------------------------------------------------------

CrossEntropyResult cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> targets) {
  PTDP_CHECK_EQ(logits.ndim(), 2);
  const std::int64_t n = logits.dim(0);
  const std::int64_t vocab = logits.dim(1);
  PTDP_CHECK_EQ(static_cast<std::int64_t>(targets.size()), n);
  Tensor probs = softmax_lastdim(logits);
  auto dp = probs.data();
  double loss = 0.0;
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int32_t t = targets[static_cast<std::size_t>(r)];
    PTDP_CHECK(t >= 0 && t < vocab);
    loss -= std::log(std::max(dp[static_cast<std::size_t>(r * vocab + t)], 1e-30f));
  }
  return CrossEntropyResult{static_cast<float>(loss / static_cast<double>(n)),
                            std::move(probs)};
}

Tensor cross_entropy_backward(const Tensor& probs,
                              std::span<const std::int32_t> targets) {
  const std::int64_t n = probs.dim(0);
  const std::int64_t vocab = probs.dim(1);
  Tensor dlogits = probs.clone();
  auto dl = dlogits.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t r = 0; r < n; ++r) {
    dl[static_cast<std::size_t>(r * vocab + targets[static_cast<std::size_t>(r)])] -=
        1.0f;
  }
  for (float& v : dl) v *= inv_n;
  return dlogits;
}

// ---- reductions ----------------------------------------------------------------

float sum_all(const Tensor& x) {
  double s = 0.0;
  for (float v : x.data()) s += v;
  return static_cast<float>(s);
}

float mean_all(const Tensor& x) {
  PTDP_CHECK_GT(x.numel(), 0);
  return sum_all(x) / static_cast<float>(x.numel());
}

float max_all(const Tensor& x) {
  PTDP_CHECK_GT(x.numel(), 0);
  float m = -std::numeric_limits<float>::infinity();
  for (float v : x.data()) m = std::max(m, v);
  return m;
}

double squared_norm(const Tensor& x) {
  double s = 0.0;
  for (float v : x.data()) s += static_cast<double>(v) * v;
  return s;
}

Tensor row_max(const Tensor& x) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = leading_rows(x);
  Tensor out = Tensor::empty({rows});
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float m = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < n; ++j) {
        m = std::max(m, dx[static_cast<std::size_t>(r * n + j)]);
      }
      dout[static_cast<std::size_t>(r)] = m;
    }
  });
  return out;
}

Tensor row_sum(const Tensor& x) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = leading_rows(x);
  Tensor out = Tensor::empty({rows});
  auto dx = x.data();
  auto dout = out.data();
  parallel_for(0, rows, row_grain(n), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float s = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        s += dx[static_cast<std::size_t>(r * n + j)];
      }
      dout[static_cast<std::size_t>(r)] = s;
    }
  });
  return out;
}

}  // namespace ptdp::tensor
