#include "ptdp/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace ptdp::tensor {

std::int64_t numel_of(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    PTDP_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

Tensor Tensor::empty(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = numel_of(t.shape_);
  t.storage_ =
      std::make_shared<mem::Buffer>(static_cast<std::size_t>(t.numel_));
  return t;
}

Tensor::Tensor(Shape shape) {
  *this = empty(std::move(shape));
  zero();
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = empty(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t = empty(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.next_gaussian(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = empty(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.next_uniform(lo, hi));
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t = empty({n});
  auto d = t.data();
  for (std::int64_t i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] = static_cast<float>(i);
  return t;
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  Tensor t = empty({static_cast<std::int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data().begin());
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<float>& values) {
  PTDP_CHECK_EQ(numel_of(shape), static_cast<std::int64_t>(values.size()));
  Tensor t = empty(std::move(shape));
  std::copy(values.begin(), values.end(), t.data().begin());
  return t;
}

std::int64_t Tensor::dim(std::int64_t i) const {
  if (i < 0) i += ndim();
  PTDP_CHECK_GE(i, 0);
  PTDP_CHECK_LT(i, ndim());
  return shape_[static_cast<std::size_t>(i)];
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

std::span<float> Tensor::data() {
  PTDP_CHECK(defined()) << "data() on undefined tensor";
  return {storage_->data() + offset_, static_cast<std::size_t>(numel_)};
}

std::span<const float> Tensor::data() const {
  PTDP_CHECK(defined()) << "data() on undefined tensor";
  return {storage_->data() + offset_, static_cast<std::size_t>(numel_)};
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  PTDP_CHECK_EQ(static_cast<std::int64_t>(idx.size()), ndim());
  std::int64_t flat = 0;
  std::size_t d = 0;
  for (std::int64_t i : idx) {
    PTDP_DCHECK(i >= 0 && i < shape_[d]);
    flat = flat * shape_[d] + i;
    ++d;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data()[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data()[static_cast<std::size_t>(flat_index(idx))];
}

Tensor Tensor::view(Shape new_shape) const {
  PTDP_CHECK_EQ(numel_of(new_shape), numel_)
      << "view " << shape_str() << " -> incompatible shape";
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.offset_ = offset_;
  t.storage_ = storage_;
  return t;
}

Tensor Tensor::clone() const {
  Tensor t = empty(shape_);
  auto src = data();
  std::copy(src.begin(), src.end(), t.data().begin());
  return t;
}

void Tensor::copy_from(const Tensor& src) {
  PTDP_CHECK(same_shape(src)) << "copy_from shape mismatch " << shape_str() << " vs "
                              << src.shape_str();
  std::copy(src.data().begin(), src.data().end(), data().begin());
}

void Tensor::fill(float value) {
  std::fill(data().begin(), data().end(), value);
}

Tensor Tensor::slice(std::int64_t dim, std::int64_t start, std::int64_t len) const {
  if (dim < 0) dim += ndim();
  PTDP_CHECK_GE(dim, 0);
  PTDP_CHECK_LT(dim, ndim());
  PTDP_CHECK_GE(start, 0);
  PTDP_CHECK_LE(start + len, shape_[static_cast<std::size_t>(dim)]);

  Shape out_shape = shape_;
  out_shape[static_cast<std::size_t>(dim)] = len;

  std::int64_t inner = 1;
  for (std::int64_t i = dim + 1; i < ndim(); ++i)
    inner *= shape_[static_cast<std::size_t>(i)];

  if (dim == 0) {
    // Leading-dim slice is a contiguous strip: zero-copy view.
    Tensor out;
    out.shape_ = std::move(out_shape);
    out.numel_ = len * inner;
    out.offset_ = offset_ + start * inner;
    out.storage_ = storage_;
    return out;
  }

  // Treat the tensor as [outer, dim, inner] and copy.
  std::int64_t outer = 1;
  for (std::int64_t i = 0; i < dim; ++i) outer *= shape_[static_cast<std::size_t>(i)];
  const std::int64_t src_dim = shape_[static_cast<std::size_t>(dim)];

  Tensor out = empty(std::move(out_shape));
  auto src = data();
  auto dst = out.data();
  for (std::int64_t o = 0; o < outer; ++o) {
    const float* s = src.data() + (o * src_dim + start) * inner;
    float* t = dst.data() + o * len * inner;
    std::copy_n(s, len * inner, t);
  }
  return out;
}

Tensor Tensor::transpose(std::int64_t d0, std::int64_t d1) const {
  std::vector<std::int64_t> perm(static_cast<std::size_t>(ndim()));
  std::iota(perm.begin(), perm.end(), 0);
  if (d0 < 0) d0 += ndim();
  if (d1 < 0) d1 += ndim();
  std::swap(perm[static_cast<std::size_t>(d0)], perm[static_cast<std::size_t>(d1)]);
  return permute(perm);
}

Tensor Tensor::permute(const std::vector<std::int64_t>& perm) const {
  PTDP_CHECK_EQ(static_cast<std::int64_t>(perm.size()), ndim());
  const std::size_t nd = perm.size();

  Shape out_shape(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    out_shape[i] = shape_[static_cast<std::size_t>(perm[i])];
  }
  Tensor out = empty(out_shape);
  if (numel_ == 0) return out;

  // Row-major strides for the source shape.
  std::vector<std::int64_t> src_strides(nd, 1);
  for (std::size_t i = nd - 1; i > 0; --i) {
    src_strides[i - 1] = src_strides[i] * shape_[i];
  }
  // Stride of the output's i-th dimension measured in the source layout.
  std::vector<std::int64_t> gather_strides(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    gather_strides[i] = src_strides[static_cast<std::size_t>(perm[i])];
  }

  auto src = data();
  auto dst = out.data();
  std::vector<std::int64_t> idx(nd, 0);
  std::int64_t src_off = 0;
  for (std::int64_t flat = 0; flat < numel_; ++flat) {
    dst[static_cast<std::size_t>(flat)] = src[static_cast<std::size_t>(src_off)];
    // Increment the multi-index in output order, tracking source offset.
    for (std::size_t i = nd; i-- > 0;) {
      ++idx[i];
      src_off += gather_strides[i];
      if (idx[i] < out_shape[i]) break;
      src_off -= gather_strides[i] * out_shape[i];
      idx[i] = 0;
    }
  }
  return out;
}

Tensor concat(const std::vector<Tensor>& parts, std::int64_t dim) {
  PTDP_CHECK(!parts.empty());
  const Tensor& first = parts.front();
  if (dim < 0) dim += first.ndim();
  Shape out_shape = first.shape();
  std::int64_t total = 0;
  for (const Tensor& p : parts) {
    PTDP_CHECK_EQ(p.ndim(), first.ndim());
    for (std::int64_t i = 0; i < p.ndim(); ++i) {
      if (i != dim) {
        PTDP_CHECK_EQ(p.dim(i), first.dim(i));
      }
    }
    total += p.dim(dim);
  }
  out_shape[static_cast<std::size_t>(dim)] = total;
  Tensor out = Tensor::empty(out_shape);

  std::int64_t outer = 1, inner = 1;
  for (std::int64_t i = 0; i < dim; ++i) outer *= first.dim(i);
  for (std::int64_t i = dim + 1; i < first.ndim(); ++i) inner *= first.dim(i);

  auto dst = out.data();
  std::int64_t dim_off = 0;
  for (const Tensor& p : parts) {
    const std::int64_t p_dim = p.dim(dim);
    auto src = p.data();
    for (std::int64_t o = 0; o < outer; ++o) {
      const float* s = src.data() + o * p_dim * inner;
      float* t = dst.data() + (o * total + dim_off) * inner;
      std::copy_n(s, p_dim * inner, t);
    }
    dim_off += p_dim;
  }
  return out;
}

std::vector<Tensor> split(const Tensor& x, std::int64_t n, std::int64_t dim) {
  if (dim < 0) dim += x.ndim();
  PTDP_CHECK_GT(n, 0);
  PTDP_CHECK_EQ(x.dim(dim) % n, 0)
      << "split: dim " << dim << " of " << x.shape_str() << " not divisible by " << n;
  const std::int64_t len = x.dim(dim) / n;
  std::vector<Tensor> parts;
  parts.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    parts.push_back(x.slice(dim, i * len, len));
  }
  return parts;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  PTDP_CHECK(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  float m = 0.0f;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    m = std::max(m, std::abs(da[i] - db[i]));
  }
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  PTDP_CHECK(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  float bmax = 0.0f;
  for (float v : b.data()) bmax = std::max(bmax, std::abs(v));
  return max_abs_diff(a, b) <= atol + rtol * bmax;
}

}  // namespace ptdp::tensor
