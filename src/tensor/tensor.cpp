#include "ptdp/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>

#include "ptdp/runtime/parallel_for.hpp"

namespace ptdp::tensor {

namespace {

// Storage is float-denominated (the mem::Buffer unit); bf16 tensors round
// up to a whole float so the pooled size classes and byte accounting stay
// within one element of exact.
std::size_t storage_floats(std::int64_t numel, DType dtype) {
  const std::size_t bytes =
      static_cast<std::size_t>(numel) * dtype_size(dtype);
  return (bytes + sizeof(float) - 1) / sizeof(float);
}

constexpr std::int64_t kCastGrain = 1 << 15;

}  // namespace

std::int64_t numel_of(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    PTDP_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

Tensor Tensor::empty(Shape shape, DType dtype) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = numel_of(t.shape_);
  t.dtype_ = dtype;
  t.storage_ = std::make_shared<mem::Buffer>(storage_floats(t.numel_, dtype));
  return t;
}

Tensor::Tensor(Shape shape) {
  *this = empty(std::move(shape));
  zero();
}

Tensor Tensor::zeros(Shape shape, DType dtype) {
  Tensor t = empty(std::move(shape), dtype);
  t.zero();
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = empty(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t = empty(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.next_gaussian(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = empty(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.next_uniform(lo, hi));
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t = empty({n});
  auto d = t.data();
  for (std::int64_t i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] = static_cast<float>(i);
  return t;
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  Tensor t = empty({static_cast<std::int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data().begin());
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<float>& values) {
  PTDP_CHECK_EQ(numel_of(shape), static_cast<std::int64_t>(values.size()));
  Tensor t = empty(std::move(shape));
  std::copy(values.begin(), values.end(), t.data().begin());
  return t;
}

std::int64_t Tensor::dim(std::int64_t i) const {
  if (i < 0) i += ndim();
  PTDP_CHECK_GE(i, 0);
  PTDP_CHECK_LT(i, ndim());
  return shape_[static_cast<std::size_t>(i)];
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

std::span<float> Tensor::data() {
  PTDP_CHECK(defined()) << "data() on undefined tensor";
  PTDP_CHECK(dtype_ == DType::kF32)
      << "data() on " << dtype_name(dtype_)
      << " tensor — widen with to(DType::kF32) or use data_bf16()";
  return {storage_->data() + offset_, static_cast<std::size_t>(numel_)};
}

std::span<const float> Tensor::data() const {
  PTDP_CHECK(defined()) << "data() on undefined tensor";
  PTDP_CHECK(dtype_ == DType::kF32)
      << "data() on " << dtype_name(dtype_)
      << " tensor — widen with to(DType::kF32) or use data_bf16()";
  return {storage_->data() + offset_, static_cast<std::size_t>(numel_)};
}

std::span<bf16_t> Tensor::data_bf16() {
  PTDP_CHECK(defined()) << "data_bf16() on undefined tensor";
  PTDP_CHECK(dtype_ == DType::kBf16)
      << "data_bf16() on " << dtype_name(dtype_) << " tensor";
  return {reinterpret_cast<bf16_t*>(storage_->data()) + offset_,
          static_cast<std::size_t>(numel_)};
}

std::span<const bf16_t> Tensor::data_bf16() const {
  PTDP_CHECK(defined()) << "data_bf16() on undefined tensor";
  PTDP_CHECK(dtype_ == DType::kBf16)
      << "data_bf16() on " << dtype_name(dtype_) << " tensor";
  return {reinterpret_cast<const bf16_t*>(storage_->data()) + offset_,
          static_cast<std::size_t>(numel_)};
}

std::span<std::byte> Tensor::raw_bytes() {
  PTDP_CHECK(defined()) << "raw_bytes() on undefined tensor";
  return {reinterpret_cast<std::byte*>(storage_->data()) +
              static_cast<std::size_t>(offset_) * itemsize(),
          nbytes()};
}

std::span<const std::byte> Tensor::raw_bytes() const {
  PTDP_CHECK(defined()) << "raw_bytes() on undefined tensor";
  return {reinterpret_cast<const std::byte*>(storage_->data()) +
              static_cast<std::size_t>(offset_) * itemsize(),
          nbytes()};
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  PTDP_CHECK_EQ(static_cast<std::int64_t>(idx.size()), ndim());
  std::int64_t flat = 0;
  std::size_t d = 0;
  for (std::int64_t i : idx) {
    PTDP_DCHECK(i >= 0 && i < shape_[d]);
    flat = flat * shape_[d] + i;
    ++d;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data()[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data()[static_cast<std::size_t>(flat_index(idx))];
}

Tensor Tensor::view(Shape new_shape) const {
  PTDP_CHECK_EQ(numel_of(new_shape), numel_)
      << "view " << shape_str() << " -> incompatible shape";
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.offset_ = offset_;
  t.dtype_ = dtype_;
  t.storage_ = storage_;
  return t;
}

Tensor Tensor::clone() const {
  Tensor t = empty(shape_, dtype_);
  std::memcpy(t.raw_bytes().data(), raw_bytes().data(), nbytes());
  return t;
}

void Tensor::copy_from(const Tensor& src) {
  PTDP_CHECK(same_shape(src)) << "copy_from shape mismatch " << shape_str() << " vs "
                              << src.shape_str();
  PTDP_CHECK(dtype_ == src.dtype_)
      << "copy_from dtype mismatch " << dtype_name(dtype_) << " vs "
      << dtype_name(src.dtype_) << " — use cast_into() for conversions";
  std::memcpy(raw_bytes().data(), src.raw_bytes().data(), nbytes());
}

void Tensor::fill(float value) {
  if (dtype_ == DType::kF32) {
    auto d = data();
    std::fill(d.begin(), d.end(), value);
  } else {
    auto d = data_bf16();
    std::fill(d.begin(), d.end(), f32_to_bf16(value));
  }
}

Tensor Tensor::to(DType dtype) const {
  if (dtype == dtype_) return clone();
  Tensor out = empty(shape_, dtype);
  cast_into(*this, out);
  return out;
}

Tensor Tensor::slice(std::int64_t dim, std::int64_t start, std::int64_t len) const {
  if (dim < 0) dim += ndim();
  PTDP_CHECK_GE(dim, 0);
  PTDP_CHECK_LT(dim, ndim());
  PTDP_CHECK_GE(start, 0);
  PTDP_CHECK_LE(start + len, shape_[static_cast<std::size_t>(dim)]);

  Shape out_shape = shape_;
  out_shape[static_cast<std::size_t>(dim)] = len;

  std::int64_t inner = 1;
  for (std::int64_t i = dim + 1; i < ndim(); ++i)
    inner *= shape_[static_cast<std::size_t>(i)];

  if (dim == 0) {
    // Leading-dim slice is a contiguous strip: zero-copy view.
    Tensor out;
    out.shape_ = std::move(out_shape);
    out.numel_ = len * inner;
    out.offset_ = offset_ + start * inner;
    out.dtype_ = dtype_;
    out.storage_ = storage_;
    return out;
  }

  // Treat the tensor as [outer, dim, inner] and copy row strips bytewise
  // (the same loop serves both dtypes).
  std::int64_t outer = 1;
  for (std::int64_t i = 0; i < dim; ++i) outer *= shape_[static_cast<std::size_t>(i)];
  const std::int64_t src_dim = shape_[static_cast<std::size_t>(dim)];

  Tensor out = empty(std::move(out_shape), dtype_);
  const std::size_t item = itemsize();
  const std::byte* src = raw_bytes().data();
  std::byte* dst = out.raw_bytes().data();
  for (std::int64_t o = 0; o < outer; ++o) {
    const std::byte* s = src + static_cast<std::size_t>((o * src_dim + start) * inner) * item;
    std::byte* t = dst + static_cast<std::size_t>(o * len * inner) * item;
    std::memcpy(t, s, static_cast<std::size_t>(len * inner) * item);
  }
  return out;
}

Tensor Tensor::transpose(std::int64_t d0, std::int64_t d1) const {
  std::vector<std::int64_t> perm(static_cast<std::size_t>(ndim()));
  std::iota(perm.begin(), perm.end(), 0);
  if (d0 < 0) d0 += ndim();
  if (d1 < 0) d1 += ndim();
  std::swap(perm[static_cast<std::size_t>(d0)], perm[static_cast<std::size_t>(d1)]);
  return permute(perm);
}

namespace {

// Shared gather loop for permute: one element type, strides precomputed.
template <typename T>
void permute_gather(const T* src, T* dst, std::int64_t numel,
                    const Shape& out_shape,
                    const std::vector<std::int64_t>& gather_strides) {
  const std::size_t nd = out_shape.size();
  std::vector<std::int64_t> idx(nd, 0);
  std::int64_t src_off = 0;
  for (std::int64_t flat = 0; flat < numel; ++flat) {
    dst[static_cast<std::size_t>(flat)] = src[static_cast<std::size_t>(src_off)];
    // Increment the multi-index in output order, tracking source offset.
    for (std::size_t i = nd; i-- > 0;) {
      ++idx[i];
      src_off += gather_strides[i];
      if (idx[i] < out_shape[i]) break;
      src_off -= gather_strides[i] * out_shape[i];
      idx[i] = 0;
    }
  }
}

}  // namespace

Tensor Tensor::permute(const std::vector<std::int64_t>& perm) const {
  PTDP_CHECK_EQ(static_cast<std::int64_t>(perm.size()), ndim());
  const std::size_t nd = perm.size();

  Shape out_shape(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    out_shape[i] = shape_[static_cast<std::size_t>(perm[i])];
  }
  Tensor out = empty(out_shape, dtype_);
  if (numel_ == 0) return out;

  // Row-major strides for the source shape.
  std::vector<std::int64_t> src_strides(nd, 1);
  for (std::size_t i = nd - 1; i > 0; --i) {
    src_strides[i - 1] = src_strides[i] * shape_[i];
  }
  // Stride of the output's i-th dimension measured in the source layout.
  std::vector<std::int64_t> gather_strides(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    gather_strides[i] = src_strides[static_cast<std::size_t>(perm[i])];
  }

  if (dtype_ == DType::kF32) {
    permute_gather(data().data(), out.data().data(), numel_, out_shape,
                   gather_strides);
  } else {
    permute_gather(data_bf16().data(), out.data_bf16().data(), numel_,
                   out_shape, gather_strides);
  }
  return out;
}

Tensor concat(const std::vector<Tensor>& parts, std::int64_t dim) {
  PTDP_CHECK(!parts.empty());
  const Tensor& first = parts.front();
  if (dim < 0) dim += first.ndim();
  Shape out_shape = first.shape();
  std::int64_t total = 0;
  for (const Tensor& p : parts) {
    PTDP_CHECK_EQ(p.ndim(), first.ndim());
    PTDP_CHECK(p.dtype() == first.dtype()) << "concat dtype mismatch";
    for (std::int64_t i = 0; i < p.ndim(); ++i) {
      if (i != dim) {
        PTDP_CHECK_EQ(p.dim(i), first.dim(i));
      }
    }
    total += p.dim(dim);
  }
  out_shape[static_cast<std::size_t>(dim)] = total;
  Tensor out = Tensor::empty(out_shape, first.dtype());

  std::int64_t outer = 1, inner = 1;
  for (std::int64_t i = 0; i < dim; ++i) outer *= first.dim(i);
  for (std::int64_t i = dim + 1; i < first.ndim(); ++i) inner *= first.dim(i);

  const std::size_t item = first.itemsize();
  std::byte* dst = out.raw_bytes().data();
  std::int64_t dim_off = 0;
  for (const Tensor& p : parts) {
    const std::int64_t p_dim = p.dim(dim);
    const std::byte* src = p.raw_bytes().data();
    for (std::int64_t o = 0; o < outer; ++o) {
      const std::byte* s = src + static_cast<std::size_t>(o * p_dim * inner) * item;
      std::byte* t =
          dst + static_cast<std::size_t>((o * total + dim_off) * inner) * item;
      std::memcpy(t, s, static_cast<std::size_t>(p_dim * inner) * item);
    }
    dim_off += p_dim;
  }
  return out;
}

std::vector<Tensor> split(const Tensor& x, std::int64_t n, std::int64_t dim) {
  if (dim < 0) dim += x.ndim();
  PTDP_CHECK_GT(n, 0);
  PTDP_CHECK_EQ(x.dim(dim) % n, 0)
      << "split: dim " << dim << " of " << x.shape_str() << " not divisible by " << n;
  const std::int64_t len = x.dim(dim) / n;
  std::vector<Tensor> parts;
  parts.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    parts.push_back(x.slice(dim, i * len, len));
  }
  return parts;
}

void widen_bf16(std::span<const bf16_t> src, std::span<float> dst) {
  PTDP_CHECK_EQ(src.size(), dst.size());
  runtime::parallel_for(
      0, static_cast<std::int64_t>(src.size()), kCastGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          dst[static_cast<std::size_t>(i)] =
              bf16_to_f32(src[static_cast<std::size_t>(i)]);
        }
      });
}

void narrow_bf16(std::span<const float> src, std::span<bf16_t> dst) {
  PTDP_CHECK_EQ(src.size(), dst.size());
  runtime::parallel_for(
      0, static_cast<std::int64_t>(src.size()), kCastGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          dst[static_cast<std::size_t>(i)] =
              f32_to_bf16(src[static_cast<std::size_t>(i)]);
        }
      });
}

void cast_into(const Tensor& src, Tensor& dst) {
  PTDP_CHECK(src.same_shape(dst))
      << "cast_into shape mismatch " << src.shape_str() << " vs "
      << dst.shape_str();
  if (src.dtype() == dst.dtype()) {
    dst.copy_from(src);
  } else if (src.dtype() == DType::kBf16) {
    widen_bf16(src.data_bf16(), dst.data());
  } else {
    narrow_bf16(src.data(), dst.data_bf16());
  }
}

namespace {

// Reads element i of either dtype as f32 (bf16 widens exactly).
float elem_f32(const Tensor& t, std::size_t i) {
  return t.dtype() == DType::kF32 ? t.data()[i] : bf16_to_f32(t.data_bf16()[i]);
}

}  // namespace

float max_abs_diff(const Tensor& a, const Tensor& b) {
  PTDP_CHECK(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  float m = 0.0f;
  if (a.dtype() == DType::kF32 && b.dtype() == DType::kF32) {
    auto da = a.data();
    auto db = b.data();
    for (std::size_t i = 0; i < da.size(); ++i) {
      m = std::max(m, std::abs(da[i] - db[i]));
    }
    return m;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(a.numel()); ++i) {
    m = std::max(m, std::abs(elem_f32(a, i) - elem_f32(b, i)));
  }
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  PTDP_CHECK(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  float bmax = 0.0f;
  for (std::size_t i = 0; i < static_cast<std::size_t>(b.numel()); ++i) {
    bmax = std::max(bmax, std::abs(elem_f32(b, i)));
  }
  return max_abs_diff(a, b) <= atol + rtol * bmax;
}

}  // namespace ptdp::tensor
