#include "ptdp/dist/comm.hpp"

#include <algorithm>
#include <cstring>

#include "ptdp/dist/tags.hpp"
#include "ptdp/obs/trace.hpp"

namespace ptdp::dist {

namespace {

// Collective tags come from the shared tag-space map (ptdp/dist/tags.hpp);
// the aliases keep the algorithm bodies readable.
using tags::kAllGatherTag;
using tags::kAllGatherVarTag;
using tags::kAllReduceTag;
using tags::kBarrierTag;
using tags::kBroadcastTag;
using tags::kReduceScatterTag;

template <typename F>
void apply_reduce(ReduceOp op, std::span<F> acc, std::span<const F> other) {
  PTDP_CHECK_EQ(acc.size(), other.size());
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += other[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = std::max(acc[i], other[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = std::min(acc[i], other[i]);
      break;
  }
}

// Uneven chunking: chunk c covers [offset(c), offset(c+1)) with the first
// (len % n) chunks one element larger.
struct Chunking {
  std::size_t len;
  std::size_t n;
  std::size_t offset(std::size_t c) const {
    const std::size_t base = len / n;
    const std::size_t rem = len % n;
    return c * base + std::min(c, rem);
  }
  std::size_t size(std::size_t c) const { return offset(c + 1) - offset(c); }
};

}  // namespace

namespace {
// One metrics tick per collective *call* (ring/tree steps are accounted as
// bytes by the isend/irecv hooks).
inline void note_collective(std::uint64_t comm_id) {
  if (obs::metrics_on()) {
    obs::MetricsRegistry::instance().on_comm_collective(comm_id);
  }
}
}  // namespace

void Comm::barrier() const {
  const int n = size();
  if (n == 1) return;
  fault_hook(FaultSite::kCollective);
  note_collective(comm_id_);
  obs::Span span("barrier", obs::Cat::kCollective,
                 {{"ranks", n}, {"comm", static_cast<std::int64_t>(comm_id_)}});
  const std::uint8_t token = 0;
  std::uint8_t sink = 0;
  for (int dist = 1; dist < n; dist <<= 1) {
    const int to = (rank_ + dist) % n;
    const int from = (rank_ - dist % n + n) % n;
    send(std::span<const std::uint8_t>(&token, 1), to, kBarrierTag);
    recv(std::span<std::uint8_t>(&sink, 1), from, kBarrierTag);
  }
}

void Comm::broadcast_bytes(std::span<std::uint8_t> data, int root) const {
  const int n = size();
  PTDP_CHECK_GE(root, 0);
  PTDP_CHECK_LT(root, n);
  if (n == 1) return;
  fault_hook(FaultSite::kCollective);
  note_collective(comm_id_);
  obs::Span span("broadcast", obs::Cat::kCollective,
                 {{"bytes", static_cast<std::int64_t>(data.size())}, {"ranks", n}});
  // Binomial tree rooted at `root`, expressed in root-relative ranks.
  const int relative = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (relative & mask) {
      const int src = ((relative - mask) + root) % n;
      recv(data, src, kBroadcastTag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const int dst = (relative + mask + root) % n;
      send(std::span<const std::uint8_t>(data.data(), data.size()), dst, kBroadcastTag);
    }
    mask >>= 1;
  }
}

template <typename F>
void Comm::all_reduce_impl(std::span<F> data, ReduceOp op) const {
  const int n = size();
  if (n == 1 || data.empty()) return;
  fault_hook(FaultSite::kCollective);
  note_collective(comm_id_);
  obs::Span span("all_reduce", obs::Cat::kCollective,
                 {{"bytes", static_cast<std::int64_t>(data.size_bytes())}, {"ranks", n}});
  const int next = (rank_ + 1) % n;
  const int prev = (rank_ - 1 + n) % n;
  const Chunking ck{data.size(), static_cast<std::size_t>(n)};
  std::vector<F> scratch(ck.size(0));  // max chunk size is chunk 0's

  // Phase 1: ring reduce-scatter. After n-1 steps rank r holds the full
  // reduction of chunk (r+1) mod n.
  for (int step = 0; step < n - 1; ++step) {
    const std::size_t send_c = static_cast<std::size_t>((rank_ - step + n) % n);
    const std::size_t recv_c = static_cast<std::size_t>((rank_ - step - 1 + 2 * n) % n);
    send(std::span<const F>(data.data() + ck.offset(send_c), ck.size(send_c)), next,
         kAllReduceTag);
    std::span<F> incoming(scratch.data(), ck.size(recv_c));
    recv(incoming, prev, kAllReduceTag);
    apply_reduce(op, std::span<F>(data.data() + ck.offset(recv_c), ck.size(recv_c)),
                 std::span<const F>(incoming.data(), incoming.size()));
  }

  // Phase 2: ring all-gather of the reduced chunks.
  for (int step = 0; step < n - 1; ++step) {
    const std::size_t send_c = static_cast<std::size_t>((rank_ + 1 - step + 2 * n) % n);
    const std::size_t recv_c = static_cast<std::size_t>((rank_ - step + 2 * n) % n);
    send(std::span<const F>(data.data() + ck.offset(send_c), ck.size(send_c)), next,
         kAllReduceTag);
    recv(std::span<F>(data.data() + ck.offset(recv_c), ck.size(recv_c)), prev,
         kAllReduceTag);
  }
}

void Comm::all_reduce(std::span<float> data, ReduceOp op) const {
  all_reduce_impl(data, op);
}
void Comm::all_reduce(std::span<double> data, ReduceOp op) const {
  all_reduce_impl(data, op);
}

void Comm::reduce_scatter(std::span<const float> in, std::span<float> out,
                          ReduceOp op) const {
  const int n = size();
  PTDP_CHECK_EQ(in.size(), out.size() * static_cast<std::size_t>(n))
      << "reduce_scatter requires equal shards";
  if (n == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  fault_hook(FaultSite::kCollective);
  note_collective(comm_id_);
  obs::Span span("reduce_scatter", obs::Cat::kCollective,
                 {{"bytes", static_cast<std::int64_t>(in.size_bytes())}, {"ranks", n}});
  const std::size_t shard = out.size();
  const int next = (rank_ + 1) % n;
  const int prev = (rank_ - 1 + n) % n;
  // Work on a private copy so `in` stays const.
  std::vector<float> work(in.begin(), in.end());
  std::vector<float> scratch(shard);
  // Chunk schedule shifted by one versus the all-reduce ring so that rank r
  // finishes owning chunk r (the conventional reduce_scatter layout).
  for (int step = 0; step < n - 1; ++step) {
    const std::size_t send_c = static_cast<std::size_t>((rank_ - step - 1 + 2 * n) % n);
    const std::size_t recv_c = static_cast<std::size_t>((rank_ - step - 2 + 3 * n) % n);
    send(std::span<const float>(work.data() + send_c * shard, shard), next,
         kReduceScatterTag);
    recv(std::span<float>(scratch.data(), shard), prev, kReduceScatterTag);
    apply_reduce(op, std::span<float>(work.data() + recv_c * shard, shard),
                 std::span<const float>(scratch.data(), shard));
  }
  std::copy_n(work.data() + static_cast<std::size_t>(rank_) * shard, shard, out.data());
}

void Comm::all_gather_bytes(std::span<const std::uint8_t> in,
                            std::span<std::uint8_t> out) const {
  const int n = size();
  const std::size_t shard = in.size();
  PTDP_CHECK_EQ(out.size(), shard * static_cast<std::size_t>(n));
  std::memcpy(out.data() + static_cast<std::size_t>(rank_) * shard, in.data(), shard);
  if (n == 1) return;
  fault_hook(FaultSite::kCollective);
  note_collective(comm_id_);
  obs::Span span("all_gather", obs::Cat::kCollective,
                 {{"bytes", static_cast<std::int64_t>(out.size())}, {"ranks", n}});
  const int next = (rank_ + 1) % n;
  const int prev = (rank_ - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const std::size_t send_c = static_cast<std::size_t>((rank_ - step + n) % n);
    const std::size_t recv_c = static_cast<std::size_t>((rank_ - step - 1 + 2 * n) % n);
    send(std::span<const std::uint8_t>(out.data() + send_c * shard, shard), next,
         kAllGatherTag);
    recv(std::span<std::uint8_t>(out.data() + recv_c * shard, shard), prev,
         kAllGatherTag);
  }
}

std::vector<std::vector<std::uint8_t>> Comm::all_gather_variable(
    std::span<const std::uint8_t> in) const {
  const int n = size();
  std::vector<std::vector<std::uint8_t>> result(static_cast<std::size_t>(n));
  result[static_cast<std::size_t>(rank_)].assign(in.begin(), in.end());
  if (n > 1) {
    fault_hook(FaultSite::kCollective);
    note_collective(comm_id_);
  }
  obs::Span span("all_gather_variable", obs::Cat::kCollective,
                 {{"bytes", static_cast<std::int64_t>(in.size())}, {"ranks", n}});
  // Control-plane convenience: exchange sizes (fixed 8 bytes) then payloads
  // pairwise. O(n^2) messages; only used for small metadata.
  const std::uint64_t my_size = in.size();
  for (int r = 0; r < n; ++r) {
    if (r == rank_) continue;
    send(std::span<const std::uint64_t>(&my_size, 1), r, kAllGatherVarTag);
    if (!in.empty()) send(in, r, kAllGatherVarTag);
  }
  for (int r = 0; r < n; ++r) {
    if (r == rank_) continue;
    std::uint64_t sz = 0;
    recv(std::span<std::uint64_t>(&sz, 1), r, kAllGatherVarTag);
    result[static_cast<std::size_t>(r)].resize(sz);
    if (sz > 0) {
      recv(std::span<std::uint8_t>(result[static_cast<std::size_t>(r)].data(), sz), r,
           kAllGatherVarTag);
    }
  }
  return result;
}

Comm Comm::split(int color, int key) const {
  struct Entry {
    int color;
    int key;
    int rank;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> entries(static_cast<std::size_t>(size()));
  all_gather(std::span<const Entry>(&mine, 1),
             std::span<Entry>(entries.data(), entries.size()));

  std::vector<Entry> peers;
  for (const Entry& e : entries) {
    if (e.color == color) peers.push_back(e);
  }
  std::stable_sort(peers.begin(), peers.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });

  std::vector<int> child_members;
  int child_rank = -1;
  child_members.reserve(peers.size());
  for (const Entry& e : peers) {
    if (e.rank == rank_) child_rank = static_cast<int>(child_members.size());
    child_members.push_back(world_rank_of(e.rank));
  }
  PTDP_CHECK_GE(child_rank, 0);

  // Derive a child id that every member computes identically. The per-rank
  // split sequence counters agree because split() is collective and every
  // member calls splits in the same order.
  const std::uint64_t seq = next_split_seq();
  const std::uint64_t child_id = ptdp::detail::mix64(
      comm_id_ ^ ptdp::detail::mix64(seq * 0x2545F4914F6CDD1DULL + 1) ^
      ptdp::detail::mix64(static_cast<std::uint64_t>(color) + 0x9E3779B9ULL));
  return Comm(mailbox_, std::move(child_members), child_rank, child_id);
}

}  // namespace ptdp::dist
