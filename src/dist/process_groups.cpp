#include "ptdp/dist/process_groups.hpp"

#include "ptdp/obs/metrics.hpp"
#include "ptdp/runtime/check.hpp"

namespace ptdp::dist {

ProcessGroups::ProcessGroups(const Comm& world, int p, int t, int d)
    : p_(p), t_(t), d_(d), coord_(coord_of(world.rank(), t, d)), world_(world) {
  PTDP_CHECK_GT(p, 0);
  PTDP_CHECK_GT(t, 0);
  PTDP_CHECK_GT(d, 0);
  PTDP_CHECK_EQ(world.size(), p * t * d)
      << "world size must equal p*t*d; got n=" << world.size() << " p=" << p
      << " t=" << t << " d=" << d;

  // Tensor group: same (pipeline, data) coordinates, ordered by tensor rank.
  tensor_ = world.split(/*color=*/coord_.pipeline * d_ + coord_.data,
                        /*key=*/coord_.tensor);
  PTDP_CHECK_EQ(tensor_->size(), t_);
  PTDP_CHECK_EQ(tensor_->rank(), coord_.tensor);

  // Pipeline group: same (data, tensor), ordered by stage.
  pipeline_ = world.split(/*color=*/coord_.data * t_ + coord_.tensor,
                          /*key=*/coord_.pipeline);
  PTDP_CHECK_EQ(pipeline_->size(), p_);
  PTDP_CHECK_EQ(pipeline_->rank(), coord_.pipeline);

  // Data group: same (pipeline, tensor), ordered by replica.
  data_ = world.split(/*color=*/coord_.pipeline * t_ + coord_.tensor,
                      /*key=*/coord_.data);
  PTDP_CHECK_EQ(data_->size(), d_);
  PTDP_CHECK_EQ(data_->rank(), coord_.data);

  // Embedding group: first and last stages sharing (data, tensor). Interior
  // stages get a singleton group (distinct colors keep them apart).
  const bool member = is_first_stage() || is_last_stage();
  const int embed_color = member ? coord_.data * t_ + coord_.tensor
                                 : -(world.rank() + 1);
  embedding_ = world.split(embed_color, /*key=*/coord_.pipeline);
  if (member && p_ > 1) {
    PTDP_CHECK_EQ(embedding_->size(), 2);
  } else {
    PTDP_CHECK_EQ(embedding_->size(), 1);
  }

  // Name the groups for the per-rank comm-volume report. Idempotent: every
  // rank of a group registers the same (comm id, name) pair.
  auto& metrics = obs::MetricsRegistry::instance();
  metrics.name_comm_group(world.id(), "world");
  metrics.name_comm_group(tensor_->id(), "tensor");
  metrics.name_comm_group(pipeline_->id(), "pipeline");
  metrics.name_comm_group(data_->id(), "data");
  metrics.name_comm_group(embedding_->id(), "embedding");
}

}  // namespace ptdp::dist
