#include "ptdp/dist/fault.hpp"

#include <filesystem>
#include <fstream>
#include <thread>

#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/rng.hpp"

namespace ptdp::dist {

namespace {

std::string describe(int rank, FaultSite site, std::uint64_t count) {
  return "injected fault: rank " + std::to_string(rank) + " killed at " +
         fault_site_name(site) + " op #" + std::to_string(count);
}

// Flips one mid-file byte so both whole-file CRCs and any structured parse
// of the file notice. No-op on missing/empty files (a kill elsewhere may
// already have removed the target).
void flip_byte(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return;
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f.good()) return;
  const auto pos = static_cast<std::streamoff>(size / 2);
  f.seekg(pos);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(pos);
  f.write(&byte, 1);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kSend: return "send";
    case FaultSite::kRecv: return "recv";
    case FaultSite::kCollective: return "collective";
    case FaultSite::kCkptWrite: return "ckpt-write";
  }
  return "?";
}

InjectedFault::InjectedFault(int rank, FaultSite site, std::uint64_t count)
    : std::runtime_error(describe(rank, site, count)),
      rank_(rank),
      site_(site),
      count_(count) {}

FaultPlan& FaultPlan::add(FaultSpec spec) {
  PTDP_CHECK_GE(spec.nth, 1u) << "fault op counts are 1-based";
  std::lock_guard lock(mu_);
  specs_.push_back(Armed{spec});
  return *this;
}

FaultPlan& FaultPlan::kill(int rank, FaultSite site, std::uint64_t nth) {
  return add({FaultSpec::Action::kKill, rank, site, nth, {}});
}

FaultPlan& FaultPlan::delay(int rank, FaultSite site, std::uint64_t nth,
                            std::chrono::microseconds d) {
  return add({FaultSpec::Action::kDelay, rank, site, nth, d});
}

FaultPlan& FaultPlan::corrupt_ckpt(int rank, std::uint64_t nth) {
  return add({FaultSpec::Action::kCorruptFile, rank, FaultSite::kCkptWrite, nth, {}});
}

FaultPlan& FaultPlan::kill_random(int world_size, FaultSite site,
                                  std::uint64_t max_nth) {
  PTDP_CHECK_GT(world_size, 0);
  PTDP_CHECK_GE(max_nth, 1u);
  std::uint64_t rank_draw, nth_draw;
  {
    std::lock_guard lock(mu_);
    rank_draw = detail::mix64(draw_ ^ 0x9E3779B97F4A7C15ULL);
    nth_draw = detail::mix64(rank_draw + 1);
    draw_ = nth_draw;  // evolve so successive calls draw fresh values
  }
  return kill(static_cast<int>(rank_draw % static_cast<std::uint64_t>(world_size)),
              site, 1 + nth_draw % max_nth);
}

bool FaultPlan::bump_and_match(int rank, FaultSite site, Fired* out) {
  std::lock_guard lock(mu_);
  const std::uint64_t c = ++counts_[key(rank, site)];
  for (Armed& a : specs_) {
    if (!a.armed) continue;
    if (a.spec.site != site) continue;
    if (a.spec.rank != -1 && a.spec.rank != rank) continue;
    if (a.spec.nth != c) continue;
    a.armed = false;
    history_.push_back(FaultEvent{a.spec, rank, c, run_index_});
    *out = Fired{a.spec, c};
    return true;
  }
  return false;
}

void FaultPlan::on_op(int rank, FaultSite site) {
  Fired fired;
  if (!bump_and_match(rank, site, &fired)) return;
  switch (fired.spec.action) {
    case FaultSpec::Action::kKill:
      throw InjectedFault(rank, site, fired.count);
    case FaultSpec::Action::kDelay:
      if (fired.spec.delay.count() > 0) std::this_thread::sleep_for(fired.spec.delay);
      break;
    case FaultSpec::Action::kCorruptFile:
      // File corruption only makes sense at a write phase with a path; a
      // corrupt spec matching a comm op is a plan-authoring error.
      PTDP_CHECK(site == FaultSite::kCkptWrite)
          << "kCorruptFile spec fired at a non-ckpt site";
      break;
  }
}

void FaultPlan::on_file_phase(int rank, const std::string& final_path,
                              const std::string& tmp_path,
                              bool phase_is_pre_rename) {
  Fired fired;
  if (!bump_and_match(rank, FaultSite::kCkptWrite, &fired)) return;
  switch (fired.spec.action) {
    case FaultSpec::Action::kKill:
      throw InjectedFault(rank, FaultSite::kCkptWrite, fired.count);
    case FaultSpec::Action::kDelay:
      if (fired.spec.delay.count() > 0) std::this_thread::sleep_for(fired.spec.delay);
      break;
    case FaultSpec::Action::kCorruptFile:
      flip_byte(phase_is_pre_rename ? tmp_path : final_path);
      break;
  }
}

void FaultPlan::begin_run() {
  std::lock_guard lock(mu_);
  counts_.clear();
  ++run_index_;
}

void FaultPlan::rearm() {
  std::lock_guard lock(mu_);
  for (Armed& a : specs_) a.armed = true;
  history_.clear();
  counts_.clear();
  run_index_ = -1;
  draw_ = seed_;
}

std::uint64_t FaultPlan::count(int rank, FaultSite site) const {
  std::lock_guard lock(mu_);
  const auto it = counts_.find(key(rank, site));
  return it == counts_.end() ? 0 : it->second;
}

std::vector<FaultEvent> FaultPlan::history() const {
  std::lock_guard lock(mu_);
  return history_;
}

int FaultPlan::runs_started() const {
  std::lock_guard lock(mu_);
  return run_index_ + 1;
}

}  // namespace ptdp::dist
