#include "ptdp/dist/fault.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>

#include "ptdp/dist/world.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/runtime/rng.hpp"
#include "ptdp/runtime/stopwatch.hpp"

namespace ptdp::dist {

namespace {

std::string describe(int rank, FaultSite site, std::uint64_t count) {
  return "injected fault: rank " + std::to_string(rank) + " killed at " +
         fault_site_name(site) + " op #" + std::to_string(count);
}

// Flips one mid-file byte so both whole-file CRCs and any structured parse
// of the file notice. No-op on missing/empty files (a kill elsewhere may
// already have removed the target).
void flip_byte(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return;
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f.good()) return;
  const auto pos = static_cast<std::streamoff>(size / 2);
  f.seekg(pos);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(pos);
  f.write(&byte, 1);
}

// A slow *machine* burns cycles; it does not sleep. Spinning (rather than
// sleep_for) makes the injected straggler visible in thread-CPU/busy time,
// which is precisely the signal HealthMonitor keys on — a sleeping fake
// straggler would look idle and test the wrong detector.
void busy_spin(std::chrono::microseconds d) {
  const std::int64_t until = ptdp::steady_now_ns() + d.count() * 1000;
  while (ptdp::steady_now_ns() < until) {
    // keep the core busy; prevent the loop from being optimized away
    asm volatile("" ::: "memory");
  }
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kSend: return "send";
    case FaultSite::kRecv: return "recv";
    case FaultSite::kCollective: return "collective";
    case FaultSite::kCkptWrite: return "ckpt-write";
  }
  return "?";
}

InjectedFault::InjectedFault(int rank, FaultSite site, std::uint64_t count)
    : std::runtime_error(describe(rank, site, count)),
      rank_(rank),
      site_(site),
      count_(count) {}

FaultPlan& FaultPlan::add(FaultSpec spec) {
  PTDP_CHECK_GE(spec.nth, 1u) << "fault op counts are 1-based";
  std::lock_guard lock(mu_);
  specs_.push_back(Armed{spec});
  return *this;
}

FaultPlan& FaultPlan::kill(int rank, FaultSite site, std::uint64_t nth) {
  return add({FaultSpec::Action::kKill, rank, site, nth, {}});
}

FaultPlan& FaultPlan::delay(int rank, FaultSite site, std::uint64_t nth,
                            std::chrono::microseconds d) {
  return add({FaultSpec::Action::kDelay, rank, site, nth, d});
}

FaultPlan& FaultPlan::corrupt_ckpt(int rank, std::uint64_t nth) {
  return add({FaultSpec::Action::kCorruptFile, rank, FaultSite::kCkptWrite, nth, {}});
}

FaultPlan& FaultPlan::slow_rank(int rank, FaultSite site, std::uint64_t nth,
                                std::chrono::microseconds spin, bool sticky) {
  FaultSpec spec{FaultSpec::Action::kSlowRank, rank, site, nth, spin};
  spec.sticky = sticky;
  return add(spec);
}

FaultPlan& FaultPlan::flaky_link(int rank, std::uint64_t nth, std::uint64_t period,
                                 std::chrono::microseconds d, bool drop, bool sticky) {
  PTDP_CHECK_GE(period, 1u) << "flaky-link period is 1-based";
  FaultSpec spec{FaultSpec::Action::kFlakyLink, rank, FaultSite::kSend, nth, d};
  spec.period = period;
  spec.drop = drop;
  spec.sticky = sticky;
  return add(spec);
}

FaultPlan& FaultPlan::hang(int rank, FaultSite site, std::uint64_t nth, bool sticky) {
  FaultSpec spec{FaultSpec::Action::kHang, rank, site, nth, {}};
  spec.sticky = sticky;
  return add(spec);
}

FaultPlan& FaultPlan::kill_random(int world_size, FaultSite site,
                                  std::uint64_t max_nth) {
  PTDP_CHECK_GT(world_size, 0);
  PTDP_CHECK_GE(max_nth, 1u);
  std::uint64_t rank_draw, nth_draw;
  {
    std::lock_guard lock(mu_);
    rank_draw = ptdp::detail::mix64(draw_ ^ 0x9E3779B97F4A7C15ULL);
    nth_draw = ptdp::detail::mix64(rank_draw + 1);
    draw_ = nth_draw;  // evolve so successive calls draw fresh values
  }
  return kill(static_cast<int>(rank_draw % static_cast<std::uint64_t>(world_size)),
              site, 1 + nth_draw % max_nth);
}

bool FaultPlan::bump_and_match(int rank, FaultSite site, Fired* out) {
  std::lock_guard lock(mu_);
  const std::uint64_t c = ++counts_[key(rank, site)];
  for (Armed& a : specs_) {
    if (!a.armed) continue;
    if (a.spec.site != site) continue;
    if (a.spec.rank != -1 && a.spec.rank != rank) continue;
    if (a.spec.nth != c) continue;
    a.armed = false;
    history_.push_back(FaultEvent{a.spec, rank, c, run_index_, noted_step()});
    *out = Fired{a.spec, c};
    return true;
  }
  return false;
}

void FaultPlan::apply_degradations(int rank, FaultSite site, FaultOutcome* out) {
  std::chrono::microseconds spin_total{0};
  std::chrono::microseconds sleep_total{0};
  {
    std::lock_guard lock(mu_);
    auto it = degradations_.find(rank);
    if (it == degradations_.end()) return;
    for (Degradation& d : it->second) {
      switch (d.kind) {
        case FaultSpec::Action::kSlowRank:
          spin_total += d.delay;
          break;
        case FaultSpec::Action::kFlakyLink:
          if (site != FaultSite::kSend) break;
          if (++d.ops_since % d.period == 0) {
            if (d.drop) {
              out->drop_message = true;
            } else {
              sleep_total += d.delay;
            }
          }
          break;
        case FaultSpec::Action::kHang:
          out->hang_forever = true;
          break;
        default:
          break;  // one-shot actions never become degradations
      }
    }
  }
  // Burn/sleep outside the lock so a degraded rank cannot stall its peers'
  // fault hooks (the real machine's slowness is private to it, too).
  if (spin_total.count() > 0) busy_spin(spin_total);
  if (sleep_total.count() > 0) std::this_thread::sleep_for(sleep_total);
}

FaultOutcome FaultPlan::on_op(int rank, FaultSite site) {
  FaultOutcome out;
  Fired fired;
  if (bump_and_match(rank, site, &fired)) {
    switch (fired.spec.action) {
      case FaultSpec::Action::kKill:
        throw InjectedFault(rank, site, fired.count);
      case FaultSpec::Action::kDelay:
        if (fired.spec.delay.count() > 0) std::this_thread::sleep_for(fired.spec.delay);
        break;
      case FaultSpec::Action::kCorruptFile:
        // File corruption only makes sense at a write phase with a path; a
        // corrupt spec matching a comm op is a plan-authoring error.
        PTDP_CHECK(site == FaultSite::kCkptWrite)
            << "kCorruptFile spec fired at a non-ckpt site";
        break;
      case FaultSpec::Action::kSlowRank:
      case FaultSpec::Action::kFlakyLink:
      case FaultSpec::Action::kHang: {
        std::lock_guard lock(mu_);
        degradations_[rank].push_back(Degradation{fired.spec.action, fired.spec.delay,
                                                  fired.spec.period, fired.spec.drop,
                                                  fired.spec.sticky});
        break;
      }
    }
  }
  apply_degradations(rank, site, &out);
  return out;
}

void FaultPlan::on_file_phase(int rank, const std::string& final_path,
                              const std::string& tmp_path,
                              bool phase_is_pre_rename) {
  Fired fired;
  if (!bump_and_match(rank, FaultSite::kCkptWrite, &fired)) return;
  switch (fired.spec.action) {
    case FaultSpec::Action::kKill:
      throw InjectedFault(rank, FaultSite::kCkptWrite, fired.count);
    case FaultSpec::Action::kDelay:
      if (fired.spec.delay.count() > 0) std::this_thread::sleep_for(fired.spec.delay);
      break;
    case FaultSpec::Action::kCorruptFile:
      flip_byte(phase_is_pre_rename ? tmp_path : final_path);
      break;
    case FaultSpec::Action::kSlowRank:
    case FaultSpec::Action::kFlakyLink:
    case FaultSpec::Action::kHang: {
      // Degradations are comm-layer afflictions; firing one at a ckpt-write
      // phase just installs it — the rank's subsequent comm ops suffer it.
      std::lock_guard lock(mu_);
      degradations_[rank].push_back(Degradation{fired.spec.action, fired.spec.delay,
                                                fired.spec.period, fired.spec.drop,
                                                fired.spec.sticky});
      break;
    }
  }
}

void FaultPlan::begin_run() {
  std::lock_guard lock(mu_);
  counts_.clear();
  ++run_index_;
  // Restart-in-place lifts transient degradations; sticky ones model a bad
  // machine the relaunched world landed on again, so they persist (with
  // their flaky-period counters rewound for replayability).
  for (auto it = degradations_.begin(); it != degradations_.end();) {
    auto& v = it->second;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [](const Degradation& d) { return !d.sticky; }),
            v.end());
    for (Degradation& d : v) d.ops_since = 0;
    it = v.empty() ? degradations_.erase(it) : std::next(it);
  }
}

void FaultPlan::rearm() {
  std::lock_guard lock(mu_);
  for (Armed& a : specs_) a.armed = true;
  history_.clear();
  counts_.clear();
  degradations_.clear();
  quarantined_.clear();
  run_index_ = -1;
  draw_ = seed_;
}

void FaultPlan::quarantine_rank(int rank) {
  std::lock_guard lock(mu_);
  quarantined_.insert(rank);
  degradations_.erase(rank);
  for (Armed& a : specs_) {
    if (a.spec.rank == rank) a.armed = false;
  }
}

std::vector<int> FaultPlan::degraded_ranks() const {
  std::lock_guard lock(mu_);
  std::vector<int> out;
  for (const auto& [rank, v] : degradations_) {
    if (!v.empty()) out.push_back(rank);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t FaultPlan::count(int rank, FaultSite site) const {
  std::lock_guard lock(mu_);
  const auto it = counts_.find(key(rank, site));
  return it == counts_.end() ? 0 : it->second;
}

std::vector<FaultEvent> FaultPlan::history() const {
  std::lock_guard lock(mu_);
  return history_;
}

int FaultPlan::runs_started() const {
  std::lock_guard lock(mu_);
  return run_index_ + 1;
}

}  // namespace ptdp::dist
