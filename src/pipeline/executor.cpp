#include "ptdp/pipeline/executor.hpp"

namespace ptdp::pipeline {

using model::Microbatch;
using model::StageCache;
using tensor::Tensor;

namespace {
// Tag layout: bit 47 = direction, bits 8..46 = microbatch, bits 0..7 = chunk
// *at the receiver* (so sender and receiver agree even across the
// rank-(p-1) -> rank-0 chunk boundary).
std::uint64_t make_tag(bool backward, int microbatch, int recv_chunk) {
  return (static_cast<std::uint64_t>(backward) << 47) |
         (static_cast<std::uint64_t>(microbatch) << 8) |
         static_cast<std::uint64_t>(recv_chunk);
}
}  // namespace

PipelineExecutor::PipelineExecutor(std::vector<model::GptStage*> chunks,
                                   dist::Comm pipe, ScheduleParams params)
    : chunks_(std::move(chunks)), pipe_(std::move(pipe)), params_(params) {
  PTDP_CHECK_EQ(pipe_.size(), params_.p);
  PTDP_CHECK_EQ(static_cast<int>(chunks_.size()), params_.v);
  for (const auto* c : chunks_) PTDP_CHECK(c != nullptr);
  if (params_.p == 1) {
    PTDP_CHECK_EQ(params_.v, 1) << "interleaving needs a real pipeline (p > 1)";
  }
}

PipelineExecutor::Endpoint PipelineExecutor::prev_of(int chunk) const {
  const int rank = pipe_.rank();
  if (rank > 0) return {rank - 1, chunk};
  return {params_.p - 1, chunk - 1};
}

PipelineExecutor::Endpoint PipelineExecutor::next_of(int chunk) const {
  const int rank = pipe_.rank();
  if (rank < params_.p - 1) return {rank + 1, chunk};
  return {0, chunk + 1};
}

float PipelineExecutor::run_batch(std::span<const Microbatch> microbatches,
                                  float extra_loss_scale) {
  PTDP_CHECK_EQ(static_cast<int>(microbatches.size()), params_.m);
  const int rank = pipe_.rank();
  const int P = num_virtual_stages(params_);
  const std::int64_t h = chunks_.front()->config().hidden;
  const float loss_scale = extra_loss_scale / static_cast<float>(params_.m);

  const std::vector<Op> ops = build_rank_schedule(params_, rank);
  std::map<std::pair<int, int>, StageCache> caches;  // (mb, chunk) -> cache
  double loss_sum = 0.0;

  for (const Op& op : ops) {
    const Microbatch& mb = microbatches[static_cast<std::size_t>(op.microbatch)];
    const int vs = virtual_stage(rank, op.chunk, params_.p);
    model::GptStage& stage = *chunks_[static_cast<std::size_t>(op.chunk)];
    StageCache& cache = caches[{op.microbatch, op.chunk}];

    if (op.kind == Op::Kind::kForward) {
      Tensor input;
      if (vs > 0) {
        input = Tensor({mb.s, mb.b, h});
        pipe_.recv(input.data(), prev_of(op.chunk).rank,
                   make_tag(false, op.microbatch, op.chunk));
      }
      model::StageForward fwd = stage.forward(input, mb, cache);
      if (vs == P - 1) {
        loss_sum += fwd.loss;
      } else {
        const Endpoint to = next_of(op.chunk);
        pipe_.send(std::span<const float>(fwd.activation.data()), to.rank,
                   make_tag(false, op.microbatch, to.chunk));
      }
    } else {
      Tensor dy;
      if (vs < P - 1) {
        dy = Tensor({mb.s, mb.b, h});
        pipe_.recv(dy.data(), next_of(op.chunk).rank,
                   make_tag(true, op.microbatch, op.chunk));
      }
      Tensor dx = stage.backward(dy, loss_scale, cache, mb);
      caches.erase({op.microbatch, op.chunk});  // activations freed here
      if (vs > 0) {
        const Endpoint to = prev_of(op.chunk);
        pipe_.send(std::span<const float>(dx.data()), to.rank,
                   make_tag(true, op.microbatch, to.chunk));
      }
    }
  }
  PTDP_CHECK(caches.empty()) << "in-flight microbatches left after flush";
  return static_cast<float>(loss_sum / params_.m);
}

float PipelineExecutor::run_forward_only(std::span<const Microbatch> microbatches) {
  const int rank = pipe_.rank();
  const int P = num_virtual_stages(params_);
  const std::int64_t h = chunks_.front()->config().hidden;
  double loss_sum = 0.0;

  for (std::size_t i = 0; i < microbatches.size(); ++i) {
    const Microbatch& mb = microbatches[i];
    for (int c = 0; c < params_.v; ++c) {
      const int vs = virtual_stage(rank, c, params_.p);
      Tensor input;
      if (vs > 0) {
        input = Tensor({mb.s, mb.b, h});
        // Distinct tag space from training traffic (bit 46).
        pipe_.recv(input.data(), prev_of(c).rank,
                   make_tag(false, static_cast<int>(i), c) | (1ULL << 46));
      }
      StageCache cache;  // dropped at scope exit — nothing is stashed
      model::StageForward fwd =
          chunks_[static_cast<std::size_t>(c)]->forward(input, mb, cache);
      if (vs == P - 1) {
        loss_sum += fwd.loss;
      } else {
        const Endpoint to = next_of(c);
        pipe_.send(std::span<const float>(fwd.activation.data()), to.rank,
                   make_tag(false, static_cast<int>(i), to.chunk) | (1ULL << 46));
      }
    }
  }
  return microbatches.empty()
             ? 0.0f
             : static_cast<float>(loss_sum / static_cast<double>(microbatches.size()));
}

}  // namespace ptdp::pipeline
