#include "ptdp/pipeline/executor.hpp"

#include "ptdp/dist/tags.hpp"
#include "ptdp/obs/trace.hpp"

namespace ptdp::pipeline {

using model::Microbatch;
using model::StageCache;
using tensor::Tensor;

// Inter-stage p2p tags come from the shared tag-space map
// (ptdp/dist/tags.hpp) — backward/eval bits, microbatch field, receiver
// chunk field. The tracer and comm-volume tests decode the same layout.
using dist::tags::make_pipeline_tag;

PipelineExecutor::PipelineExecutor(std::vector<model::GptStage*> chunks,
                                   dist::Comm pipe, dist::Comm tensor,
                                   ScheduleParams params, ExecutorOptions options)
    : chunks_(std::move(chunks)),
      pipe_(std::move(pipe)),
      tensor_(std::move(tensor)),
      params_(params),
      options_(options) {
  PTDP_CHECK_EQ(pipe_.size(), params_.p);
  PTDP_CHECK_EQ(static_cast<int>(chunks_.size()), params_.v);
  for (const auto* c : chunks_) PTDP_CHECK(c != nullptr);
  if (params_.p == 1) {
    PTDP_CHECK_EQ(params_.v, 1) << "interleaving needs a real pipeline (p > 1)";
  }
}

PipelineExecutor::PipelineExecutor(std::vector<model::GptStage*> chunks,
                                   dist::Comm pipe, ScheduleParams params)
    : PipelineExecutor(std::move(chunks), std::move(pipe), dist::Comm::solo(),
                       params, ExecutorOptions{}) {}

PipelineExecutor::Endpoint PipelineExecutor::prev_of(int chunk) const {
  const int rank = pipe_.rank();
  if (rank > 0) return {rank - 1, chunk};
  return {params_.p - 1, chunk - 1};
}

PipelineExecutor::Endpoint PipelineExecutor::next_of(int chunk) const {
  const int rank = pipe_.rank();
  if (rank < params_.p - 1) return {rank + 1, chunk};
  return {0, chunk + 1};
}

void PipelineExecutor::send_boundary(const Tensor& full, int dst, std::uint64_t tag) {
  std::span<const float> data = full.data();
  if (scatter_gather_active()) {
    const std::int64_t t = tensor_.size();
    PTDP_CHECK_EQ(static_cast<std::int64_t>(data.size()) % t, 0)
        << "scatter/gather needs s*b*h divisible by t";
    const std::size_t strip = data.size() / static_cast<std::size_t>(t);
    data = data.subspan(static_cast<std::size_t>(tensor_.rank()) * strip, strip);
  }
  std::size_t wire_bytes = data.size_bytes();
  // Narrow to the wire dtype in a pooled staging tensor. Compute upstream
  // stays f32; only the boundary payload is rounded.
  Tensor staged;
  std::span<const tensor::bf16_t> staged_bits;
  if (options_.boundary_dtype == tensor::DType::kBf16) {
    staged = Tensor::empty({static_cast<std::int64_t>(data.size())},
                           tensor::DType::kBf16);
    tensor::narrow_bf16(data, staged.data_bf16());
    staged_bits = staged.data_bf16();
    wire_bytes = staged.nbytes();
  }
  obs::Span span("p2p_send", obs::Cat::kP2p,
                 {{"bytes", static_cast<std::int64_t>(wire_bytes)},
                  {"dst", dst},
                  {"pipe", static_cast<std::int64_t>(pipe_.id())}});
  if (staged.defined()) {
    pipe_.isend(staged_bits, dst, tag);
  } else {
    pipe_.isend(data, dst, tag);
  }
  stats_.p2p_messages += 1;
  stats_.p2p_bytes_sent += wire_bytes;
}

PipelineExecutor::PendingRecv PipelineExecutor::post_recv(std::int64_t full_elems,
                                                          int src, std::uint64_t tag) {
  std::int64_t elems = full_elems;
  if (scatter_gather_active()) {
    const std::int64_t t = tensor_.size();
    PTDP_CHECK_EQ(full_elems % t, 0) << "scatter/gather needs s*b*h divisible by t";
    elems = full_elems / t;
  }
  PendingRecv pending;
  // Staging buffer is fully overwritten by the irecv payload; the pool
  // recycles it across microbatches/iterations (steady-state p2p staging
  // stops hitting the heap entirely). It lands in the wire dtype; widening
  // (if any) happens in finish_recv after the wait.
  pending.buf = Tensor::empty({elems}, options_.boundary_dtype);
  pending.req = pending.buf.dtype() == tensor::DType::kBf16
                    ? pipe_.irecv(pending.buf.data_bf16(), src, tag)
                    : pipe_.irecv(pending.buf.data(), src, tag);
  return pending;
}

Tensor PipelineExecutor::finish_recv(PendingRecv pending,
                                     const tensor::Shape& full_shape) {
  {
    obs::Span span("recv_wait", obs::Cat::kP2p,
                   {{"pipe", static_cast<std::int64_t>(pipe_.id())}});
    pending.req.wait();
  }
  const bool wire_bf16 = pending.buf.dtype() == tensor::DType::kBf16;
  if (!scatter_gather_active()) {
    if (!wire_bf16) return pending.buf.view(full_shape);
    Tensor full = Tensor::empty(full_shape);
    tensor::widen_bf16(pending.buf.data_bf16(), full.data());
    return full;
  }
  // Reconstruct the replicated boundary tensor: strips are contiguous
  // rank-order slices, so the tensor-group all-gather is exactly the
  // inverse of the sender's split — bitwise identical to a full send (of
  // the same wire dtype). Under bf16 the gather moves bf16 strips (half
  // the collective bytes too) and widens once at the end.
  Tensor full = Tensor::empty(full_shape);
  if (wire_bf16) {
    Tensor gathered = Tensor::empty({tensor::numel_of(full_shape)},
                                    tensor::DType::kBf16);
    tensor_.all_gather(std::span<const tensor::bf16_t>(pending.buf.data_bf16()),
                       std::span<tensor::bf16_t>(gathered.data_bf16()));
    tensor::widen_bf16(gathered.data_bf16(), full.data());
  } else {
    tensor_.all_gather(std::span<const float>(pending.buf.data()),
                       std::span<float>(full.data()));
  }
  return full;
}

float PipelineExecutor::run_batch(std::span<const Microbatch> microbatches,
                                  float extra_loss_scale) {
  PTDP_CHECK_EQ(static_cast<int>(microbatches.size()), params_.m);
  const int rank = pipe_.rank();
  const int P = num_virtual_stages(params_);
  const std::int64_t h = chunks_.front()->config().hidden;
  const float loss_scale = extra_loss_scale / static_cast<float>(params_.m);

  const std::int64_t batch = batches_run_++;  // labels this flush in traces
  const std::vector<Op> ops = build_rank_schedule(params_, rank);
  std::map<std::pair<int, int>, StageCache> caches;  // (mb, chunk) -> cache
  std::map<std::size_t, PendingRecv> pending;        // op index -> posted irecv
  std::vector<int> backwards_done(static_cast<std::size_t>(params_.v), 0);
  double loss_sum = 0.0;

  // Posts op i's boundary irecv if it needs one and none is posted yet.
  // Every (direction, microbatch, chunk) triple is its own Mailbox channel,
  // so receives may be posted in any order relative to their arrivals.
  auto ensure_posted = [&](std::size_t i) {
    if (i >= ops.size() || pending.contains(i)) return;
    const Op& op = ops[i];
    const int vs = virtual_stage(rank, op.chunk, params_.p);
    const Microbatch& mb = microbatches[static_cast<std::size_t>(op.microbatch)];
    const std::int64_t elems = mb.s * mb.b * h;
    if (op.kind == Op::Kind::kForward && vs > 0) {
      pending.emplace(i, post_recv(elems, prev_of(op.chunk).rank,
                                   make_pipeline_tag(false, false, op.microbatch, op.chunk)));
    } else if (op.kind == Op::Kind::kBackward && vs < P - 1) {
      pending.emplace(i, post_recv(elems, next_of(op.chunk).rank,
                                   make_pipeline_tag(true, false, op.microbatch, op.chunk)));
    }
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const Microbatch& mb = microbatches[static_cast<std::size_t>(op.microbatch)];
    const int vs = virtual_stage(rank, op.chunk, params_.p);
    model::GptStage& stage = *chunks_[static_cast<std::size_t>(op.chunk)];
    StageCache& cache = caches[{op.microbatch, op.chunk}];

    ensure_posted(i);
    // Pre-post the next op's receive before this op's compute: its payload
    // can then land while this stage works, instead of serializing after.
    if (options_.prepost_recv) ensure_posted(i + 1);

    if (op.kind == Op::Kind::kForward) {
      Tensor input;
      if (auto it = pending.find(i); it != pending.end()) {
        input = finish_recv(std::move(it->second), {mb.s, mb.b, h});
        pending.erase(it);
      }
      model::StageForward fwd = [&] {
        obs::Span span("fwd", obs::Cat::kCompute,
                       {{"mb", op.microbatch},
                        {"vs", vs},
                        {"stage", rank},
                        {"pipe", static_cast<std::int64_t>(pipe_.id())},
                        {"batch", batch}});
        return stage.forward(input, mb, cache);
      }();
      if (vs == P - 1) {
        loss_sum += fwd.loss;
      } else {
        const Endpoint to = next_of(op.chunk);
        send_boundary(fwd.activation, to.rank,
                      make_pipeline_tag(false, false, op.microbatch, to.chunk));
      }
    } else {
      Tensor dy;
      if (auto it = pending.find(i); it != pending.end()) {
        dy = finish_recv(std::move(it->second), {mb.s, mb.b, h});
        pending.erase(it);
      }
      Tensor dx = [&] {
        obs::Span span("bwd", obs::Cat::kCompute,
                       {{"mb", op.microbatch},
                        {"vs", vs},
                        {"stage", rank},
                        {"pipe", static_cast<std::int64_t>(pipe_.id())},
                        {"batch", batch}});
        return stage.backward(dy, loss_scale, cache, mb);
      }();
      caches.erase({op.microbatch, op.chunk});  // activations freed here
      if (vs > 0) {
        const Endpoint to = prev_of(op.chunk);
        send_boundary(dx, to.rank, make_pipeline_tag(true, false, op.microbatch, to.chunk));
      }
      // After the upstream send this chunk's work for the batch may be
      // complete — its parameter grads are then final (each backward op
      // only touches its own chunk's params), which is what the grad
      // reducer overlap keys on.
      auto& done = backwards_done[static_cast<std::size_t>(op.chunk)];
      if (++done == params_.m && hook_) hook_(op.chunk);
    }
  }
  PTDP_CHECK(caches.empty()) << "in-flight microbatches left after flush";
  PTDP_CHECK(pending.empty()) << "pre-posted receives left after flush";
  return static_cast<float>(loss_sum / params_.m);
}

float PipelineExecutor::run_forward_only(std::span<const Microbatch> microbatches) {
  const int rank = pipe_.rank();
  const int P = num_virtual_stages(params_);
  const std::int64_t h = chunks_.front()->config().hidden;
  double loss_sum = 0.0;

  for (std::size_t i = 0; i < microbatches.size(); ++i) {
    const Microbatch& mb = microbatches[i];
    for (int c = 0; c < params_.v; ++c) {
      const int vs = virtual_stage(rank, c, params_.p);
      Tensor input;
      if (vs > 0) {
        // Eval traffic carries the tag-space eval bit so it can never
        // collide with training microbatch tags.
        input = finish_recv(
            post_recv(mb.s * mb.b * h, prev_of(c).rank,
                      make_pipeline_tag(false, true, static_cast<std::int64_t>(i), c)),
            {mb.s, mb.b, h});
      }
      StageCache cache;  // dropped at scope exit — nothing is stashed
      // Named "fwd_eval" (not "fwd") so the timeline analyzer never mixes
      // validation traffic into training-batch bubble accounting.
      model::StageForward fwd = [&] {
        obs::Span span("fwd_eval", obs::Cat::kCompute,
                       {{"mb", static_cast<std::int64_t>(i)},
                        {"vs", vs},
                        {"stage", rank},
                        {"pipe", static_cast<std::int64_t>(pipe_.id())}});
        return chunks_[static_cast<std::size_t>(c)]->forward(input, mb, cache);
      }();
      if (vs == P - 1) {
        loss_sum += fwd.loss;
      } else {
        const Endpoint to = next_of(c);
        send_boundary(fwd.activation, to.rank,
                      make_pipeline_tag(false, true, static_cast<std::int64_t>(i), to.chunk));
      }
    }
  }
  return microbatches.empty()
             ? 0.0f
             : static_cast<float>(loss_sum / static_cast<double>(microbatches.size()));
}

}  // namespace ptdp::pipeline
