#include "ptdp/pipeline/schedule.hpp"

#include <algorithm>
#include <map>

#include "ptdp/runtime/check.hpp"

namespace ptdp::pipeline {

const char* schedule_name(ScheduleType type) {
  switch (type) {
    case ScheduleType::kGPipe:
      return "gpipe";
    case ScheduleType::kOneFOneB:
      return "1f1b";
    case ScheduleType::kInterleaved:
      return "interleaved-1f1b";
  }
  return "?";
}

namespace {

void check_params(const ScheduleParams& sp) {
  PTDP_CHECK_GT(sp.p, 0);
  PTDP_CHECK_GT(sp.m, 0);
  PTDP_CHECK_GT(sp.v, 0);
  if (sp.type == ScheduleType::kInterleaved) {
    PTDP_CHECK_GE(sp.v, 2) << "interleaved schedule needs >= 2 model chunks";
    PTDP_CHECK_GE(sp.p, 2) << "interleaving needs a real pipeline (p >= 2)";
    PTDP_CHECK_EQ(sp.m % sp.p, 0)
        << "interleaved schedule requires microbatches (" << sp.m
        << ") to be a multiple of pipeline size (" << sp.p << ")";
  } else {
    PTDP_CHECK_EQ(sp.v, 1) << schedule_name(sp.type) << " uses a single model chunk";
  }
}

std::vector<Op> gpipe_schedule(const ScheduleParams& sp) {
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(2 * sp.m));
  for (int mb = 0; mb < sp.m; ++mb) ops.push_back({Op::Kind::kForward, mb, 0});
  for (int mb = 0; mb < sp.m; ++mb) ops.push_back({Op::Kind::kBackward, mb, 0});
  return ops;
}

std::vector<Op> one_f_one_b_schedule(const ScheduleParams& sp, int rank) {
  // PipeDream-Flush: warm up with (p - rank - 1) forwards, run 1F1B in
  // steady state, then drain the remaining backwards.
  const int warmup = std::min(sp.p - rank - 1, sp.m);
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(2 * sp.m));
  int next_fwd = 0;
  int next_bwd = 0;
  for (int i = 0; i < warmup; ++i) ops.push_back({Op::Kind::kForward, next_fwd++, 0});
  for (int i = 0; i < sp.m - warmup; ++i) {
    ops.push_back({Op::Kind::kForward, next_fwd++, 0});
    ops.push_back({Op::Kind::kBackward, next_bwd++, 0});
  }
  while (next_bwd < sp.m) ops.push_back({Op::Kind::kBackward, next_bwd++, 0});
  return ops;
}

// Interleaved 1F1B, following megatron-core's
// forward_backward_pipelining_with_interleaving: virtual microbatch k in
// forward order maps to microbatch (k/(p*v))*p + k%p and chunk (k%(p*v))/p;
// backward order reverses the chunk index.
struct VirtualMap {
  int p, v;
  int microbatch(int k) const {
    const int group = k / (p * v);
    return group * p + (k % p);
  }
  int fwd_chunk(int k) const { return (k % (p * v)) / p; }
  int bwd_chunk(int k) const { return v - 1 - (k % (p * v)) / p; }
};

std::vector<Op> interleaved_schedule(const ScheduleParams& sp, int rank) {
  const int total = sp.m * sp.v;  // virtual microbatches
  const VirtualMap vm{sp.p, sp.v};

  int warmup;
  if (sp.m == sp.p) {
    warmup = total;  // degenerate: all-forward then all-backward
  } else {
    warmup = std::min(total, (sp.p - rank - 1) * 2 + (sp.v - 1) * sp.p);
  }

  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(2 * total));
  for (int k = 0; k < warmup; ++k) {
    ops.push_back({Op::Kind::kForward, vm.microbatch(k), vm.fwd_chunk(k)});
  }
  const int remaining = total - warmup;
  for (int i = 0; i < remaining; ++i) {
    ops.push_back({Op::Kind::kForward, vm.microbatch(warmup + i),
                   vm.fwd_chunk(warmup + i)});
    ops.push_back({Op::Kind::kBackward, vm.microbatch(i), vm.bwd_chunk(i)});
  }
  for (int k = remaining; k < total; ++k) {
    ops.push_back({Op::Kind::kBackward, vm.microbatch(k), vm.bwd_chunk(k)});
  }
  return ops;
}

}  // namespace

std::vector<Op> build_rank_schedule(const ScheduleParams& sp, int rank) {
  check_params(sp);
  PTDP_CHECK(0 <= rank && rank < sp.p) << "rank " << rank;
  switch (sp.type) {
    case ScheduleType::kGPipe:
      return gpipe_schedule(sp);
    case ScheduleType::kOneFOneB:
      return one_f_one_b_schedule(sp, rank);
    case ScheduleType::kInterleaved:
      return interleaved_schedule(sp, rank);
  }
  PTDP_CHECK(false) << "unreachable";
  return {};
}

int max_in_flight(const std::vector<Op>& ops) {
  int live = 0;
  int peak = 0;
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kForward) {
      ++live;
      peak = std::max(peak, live);
    } else {
      --live;
    }
  }
  return peak;
}

bool is_valid_rank_schedule(const ScheduleParams& sp, const std::vector<Op>& ops) {
  if (static_cast<int>(ops.size()) != 2 * sp.m * sp.v) return false;
  // Track forward-seen per (mb, chunk); forwards/backwards per chunk must be
  // in ascending microbatch order.
  std::map<std::pair<int, int>, int> seen;  // (mb, chunk) -> 1 fwd done, 2 bwd done
  std::vector<int> last_fwd(static_cast<std::size_t>(sp.v), -1);
  std::vector<int> last_bwd(static_cast<std::size_t>(sp.v), -1);
  for (const Op& op : ops) {
    if (op.microbatch < 0 || op.microbatch >= sp.m) return false;
    if (op.chunk < 0 || op.chunk >= sp.v) return false;
    auto key = std::make_pair(op.microbatch, op.chunk);
    auto& state = seen[key];
    if (op.kind == Op::Kind::kForward) {
      if (state != 0) return false;
      if (op.microbatch <= last_fwd[static_cast<std::size_t>(op.chunk)]) return false;
      last_fwd[static_cast<std::size_t>(op.chunk)] = op.microbatch;
      state = 1;
    } else {
      if (state != 1) return false;
      if (op.microbatch <= last_bwd[static_cast<std::size_t>(op.chunk)]) return false;
      last_bwd[static_cast<std::size_t>(op.chunk)] = op.microbatch;
      state = 2;
    }
  }
  for (const auto& [key, state] : seen) {
    if (state != 2) return false;
  }
  return static_cast<int>(seen.size()) == sp.m * sp.v;
}

std::vector<std::vector<TimedOp>> simulate_timeline(const ScheduleParams& sp,
                                                    double tf_chunk,
                                                    double tb_chunk) {
  check_params(sp);
  const int P = num_virtual_stages(sp);

  // Per-rank op lists and cursors.
  std::vector<std::vector<Op>> ops(static_cast<std::size_t>(sp.p));
  std::vector<std::size_t> cursor(static_cast<std::size_t>(sp.p), 0);
  std::vector<double> rank_time(static_cast<std::size_t>(sp.p), 0.0);
  std::vector<std::vector<TimedOp>> timeline(static_cast<std::size_t>(sp.p));
  for (int r = 0; r < sp.p; ++r) {
    ops[static_cast<std::size_t>(r)] = build_rank_schedule(sp, r);
    timeline[static_cast<std::size_t>(r)].reserve(
        ops[static_cast<std::size_t>(r)].size());
  }

  // Completion times of Fwd/Bwd per (mb, virtual stage); -1 = not done.
  auto idx = [&](int mb, int vs) {
    return static_cast<std::size_t>(mb) * static_cast<std::size_t>(P) +
           static_cast<std::size_t>(vs);
  };
  std::vector<double> fwd_done(static_cast<std::size_t>(sp.m * P), -1.0);
  std::vector<double> bwd_done(static_cast<std::size_t>(sp.m * P), -1.0);

  bool progressed = true;
  std::size_t total_remaining = 0;
  for (int r = 0; r < sp.p; ++r) total_remaining += ops[static_cast<std::size_t>(r)].size();

  while (total_remaining > 0) {
    PTDP_CHECK(progressed) << "schedule deadlocked in simulation";
    progressed = false;
    for (int r = 0; r < sp.p; ++r) {
      auto& cur = cursor[static_cast<std::size_t>(r)];
      while (cur < ops[static_cast<std::size_t>(r)].size()) {
        const Op& op = ops[static_cast<std::size_t>(r)][cur];
        const int vs = virtual_stage(r, op.chunk, sp.p);
        double ready;
        double duration;
        if (op.kind == Op::Kind::kForward) {
          ready = vs == 0 ? 0.0 : fwd_done[idx(op.microbatch, vs - 1)];
          duration = tf_chunk;
        } else {
          ready = vs == P - 1 ? fwd_done[idx(op.microbatch, vs)]
                              : bwd_done[idx(op.microbatch, vs + 1)];
          duration = tb_chunk;
        }
        if (ready < 0.0) break;  // dependency not yet computed
        const double start = std::max(rank_time[static_cast<std::size_t>(r)], ready);
        const double end = start + duration;
        rank_time[static_cast<std::size_t>(r)] = end;
        (op.kind == Op::Kind::kForward ? fwd_done : bwd_done)[idx(op.microbatch, vs)] =
            end;
        timeline[static_cast<std::size_t>(r)].push_back(TimedOp{op, start, end});
        ++cur;
        --total_remaining;
        progressed = true;
      }
    }
  }
  return timeline;
}

double simulate_makespan(const ScheduleParams& sp, double tf_chunk, double tb_chunk) {
  const auto timeline = simulate_timeline(sp, tf_chunk, tb_chunk);
  double makespan = 0.0;
  for (const auto& rank_ops : timeline) {
    for (const TimedOp& t : rank_ops) makespan = std::max(makespan, t.end);
  }
  return makespan;
}

double bubble_fraction(const ScheduleParams& sp, double tf_chunk, double tb_chunk) {
  const double makespan = simulate_makespan(sp, tf_chunk, tb_chunk);
  const double ideal = sp.m * sp.v * (tf_chunk + tb_chunk);
  return (makespan - ideal) / ideal;
}

}  // namespace ptdp::pipeline
