#include "ptdp/quant/quant.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "ptdp/ckpt/checkpoint.hpp"
#include "ptdp/ckpt/manifest.hpp"

namespace ptdp::quant {

using tensor::kQuantPanel;
using tensor::QuantKind;
using tensor::Tensor;

namespace {

// Byte blobs ride in f32 tensors (numel = ceil(bytes/4)) so pool
// accounting, checkpoint CRCs, and comm transport treat them uniformly.
// The padding tail is zeroed, keeping the stored bits a pure function of
// the quantized content.
Tensor byte_tensor(std::int64_t nbytes) {
  Tensor t = Tensor::empty({(nbytes + 3) / 4});
  t.zero();
  return t;
}

std::uint8_t* tensor_u8(Tensor& t) {
  return reinterpret_cast<std::uint8_t*>(t.raw_bytes().data());
}
const std::uint8_t* tensor_u8(const Tensor& t) {
  return reinterpret_cast<const std::uint8_t*>(t.raw_bytes().data());
}

QuantizedWeight make_shell(QuantKind kind, std::int64_t rows, std::int64_t cols,
                           std::int64_t group) {
  QuantizedWeight w;
  w.kind = kind;
  w.rows = rows;
  w.cols = cols;
  w.group_size = group;
  w.payload = byte_tensor(tensor::quant_payload_bytes(kind, rows, cols));
  w.scales = Tensor::empty({tensor::quant_meta_elems(rows, cols, group)});
  w.zeros = byte_tensor(w.scales.numel());
  return w;
}

struct WireHeader {
  std::uint32_t magic = 0x57515450;  // "PTQW"
  std::uint8_t kind = 0;
  std::uint8_t pad[3] = {};
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t group = 0;
};

}  // namespace

std::int64_t QuantizedWeight::payload_bytes() const {
  return tensor::quant_payload_bytes(kind, rows, cols);
}

std::int64_t QuantizedWeight::meta_elems() const {
  return tensor::quant_meta_elems(rows, cols, group_size);
}

std::int64_t QuantizedWeight::quant_bytes() const {
  if (!defined()) return 0;
  return payload_bytes() + meta_elems() * 5;  // f32 scale + u8 zero per group
}

std::uint8_t* QuantizedWeight::payload_u8() { return tensor_u8(payload); }
const std::uint8_t* QuantizedWeight::payload_u8() const {
  return tensor_u8(payload);
}
std::uint8_t* QuantizedWeight::zeros_u8() { return tensor_u8(zeros); }
const std::uint8_t* QuantizedWeight::zeros_u8() const { return tensor_u8(zeros); }

std::int64_t effective_group_size(std::int64_t requested, std::int64_t k_rows) {
  PTDP_CHECK_GT(k_rows, 0);
  std::int64_t g = std::clamp<std::int64_t>(requested, 1, k_rows);
  while (k_rows % g != 0) --g;
  return g;
}

QuantizedWeight quantize(const Tensor& w, QuantKind kind, std::int64_t group_size) {
  PTDP_CHECK_EQ(w.ndim(), 2) << "quantize expects a [k, n] weight";
  const Tensor wf =
      w.dtype() == tensor::DType::kF32 ? w : w.to(tensor::DType::kF32);
  const std::int64_t k = wf.dim(0);
  const std::int64_t n = wf.dim(1);
  const std::int64_t g = effective_group_size(group_size, k);
  QuantizedWeight q = make_shell(kind, k, n, g);
  tensor::quant_pack(kind, wf.data().data(), k, n, g, q.payload_u8(),
                     q.scales.data().data(), q.zeros_u8());
  return q;
}

Tensor dequantize(const QuantizedWeight& w) {
  PTDP_CHECK(w.defined());
  Tensor out = Tensor::empty({w.rows, w.cols});
  tensor::quant_unpack(w.kind, w.payload_u8(), w.scales.data().data(),
                       w.zeros_u8(), w.rows, w.cols, w.group_size,
                       out.data().data());
  return out;
}

Tensor matmul(const Tensor& a, const QuantizedWeight& w) {
  PTDP_CHECK(w.defined());
  PTDP_CHECK(a.dtype() == tensor::DType::kF32)
      << "quantized GEMM takes f32 activations";
  PTDP_CHECK_EQ(a.dim(-1), w.rows);
  const std::int64_t m = a.numel() / w.rows;
  tensor::Shape out_shape = a.shape();
  out_shape.back() = w.cols;
  Tensor c = Tensor::empty(std::move(out_shape));
  tensor::gemm_f32xq(w.kind, m, w.cols, w.rows, a.data().data(), w.rows,
                     w.payload_u8(), w.scales.data().data(), w.zeros_u8(),
                     w.group_size, c.data().data(), w.cols);
  return c;
}

std::vector<std::uint8_t> serialize(const QuantizedWeight& w) {
  PTDP_CHECK(w.defined());
  WireHeader h;
  h.kind = static_cast<std::uint8_t>(w.kind);
  h.rows = w.rows;
  h.cols = w.cols;
  h.group = w.group_size;
  const std::int64_t pb = w.payload_bytes();
  const std::int64_t me = w.meta_elems();
  std::vector<std::uint8_t> out(sizeof(WireHeader) +
                                static_cast<std::size_t>(pb + me * 5));
  std::uint8_t* p = out.data();
  std::memcpy(p, &h, sizeof(h));
  p += sizeof(h);
  std::memcpy(p, w.payload_u8(), static_cast<std::size_t>(pb));
  p += pb;
  std::memcpy(p, w.scales.data().data(), static_cast<std::size_t>(me) * 4);
  p += me * 4;
  std::memcpy(p, w.zeros_u8(), static_cast<std::size_t>(me));
  return out;
}

QuantizedWeight deserialize(std::span<const std::uint8_t> bytes) {
  WireHeader h;
  PTDP_CHECK_GE(bytes.size(), sizeof(WireHeader));
  std::memcpy(&h, bytes.data(), sizeof(h));
  PTDP_CHECK_EQ(h.magic, WireHeader{}.magic) << "bad quantized-weight wire magic";
  QuantizedWeight w =
      make_shell(static_cast<QuantKind>(h.kind), h.rows, h.cols, h.group);
  const std::int64_t pb = w.payload_bytes();
  const std::int64_t me = w.meta_elems();
  PTDP_CHECK_EQ(bytes.size(), sizeof(WireHeader) + static_cast<std::size_t>(pb + me * 5));
  const std::uint8_t* p = bytes.data() + sizeof(WireHeader);
  std::memcpy(w.payload_u8(), p, static_cast<std::size_t>(pb));
  p += pb;
  std::memcpy(w.scales.data().data(), p, static_cast<std::size_t>(me) * 4);
  p += me * 4;
  std::memcpy(w.zeros_u8(), p, static_cast<std::size_t>(me));
  return w;
}

QuantizedWeight broadcast(const dist::Comm& comm, const QuantizedWeight& w,
                          int root, std::int64_t* wire_bytes) {
  std::vector<std::uint8_t> buf;
  std::int64_t n = 0;
  if (comm.rank() == root) {
    buf = serialize(w);
    n = static_cast<std::int64_t>(buf.size());
  }
  comm.broadcast(std::span<std::int64_t>(&n, 1), root);
  buf.resize(static_cast<std::size_t>(n));
  comm.broadcast(std::span<std::uint8_t>(buf.data(), buf.size()), root);
  if (wire_bytes != nullptr) *wire_bytes = n;
  return deserialize(buf);
}

QuantizedWeight shard_rows(const QuantizedWeight& w, std::int64_t r0,
                           std::int64_t r1) {
  PTDP_CHECK(w.defined());
  PTDP_CHECK(0 <= r0 && r0 < r1 && r1 <= w.rows);
  PTDP_CHECK_EQ(r0 % w.group_size, 0)
      << "row shard must start on a group boundary (pick group | K/t)";
  PTDP_CHECK_EQ((r1 - r0) % w.group_size, 0)
      << "row shard must cover whole groups (pick group | K/t)";
  const std::int64_t k = r1 - r0;
  QuantizedWeight out = make_shell(w.kind, k, w.cols, w.group_size);
  const std::int64_t npanels = tensor::quant_num_panels(w.cols);
  const std::int64_t rb = tensor::quant_payload_bytes(w.kind, 1, kQuantPanel);
  for (std::int64_t jp = 0; jp < npanels; ++jp) {
    std::memcpy(out.payload_u8() + jp * k * rb,
                w.payload_u8() + (jp * w.rows + r0) * rb,
                static_cast<std::size_t>(k * rb));
  }
  const std::int64_t g0 = r0 / w.group_size;
  const std::int64_t stride = npanels * kQuantPanel;
  std::memcpy(out.scales.data().data(), w.scales.data().data() + g0 * stride,
              static_cast<std::size_t>(out.meta_elems()) * 4);
  std::memcpy(out.zeros_u8(), w.zeros_u8() + g0 * stride,
              static_cast<std::size_t>(out.meta_elems()));
  return out;
}

QuantizedWeight slice_cols(const QuantizedWeight& w, std::int64_t c0,
                           std::int64_t c1) {
  PTDP_CHECK(w.defined());
  PTDP_CHECK(0 <= c0 && c0 < c1 && c1 <= w.cols);
  PTDP_CHECK_EQ(c0 % kQuantPanel, 0) << "column shard must be panel-aligned";
  PTDP_CHECK(c1 % kQuantPanel == 0 || c1 == w.cols)
      << "column shard must end on a panel boundary (or the last column)";
  const std::int64_t p0 = c0 / kQuantPanel;
  QuantizedWeight out = make_shell(w.kind, w.rows, c1 - c0, w.group_size);
  const std::int64_t npanels = tensor::quant_num_panels(w.cols);
  const std::int64_t npanels_out = tensor::quant_num_panels(c1 - c0);
  const std::int64_t rb = tensor::quant_payload_bytes(w.kind, 1, kQuantPanel);
  std::memcpy(out.payload_u8(), w.payload_u8() + p0 * w.rows * rb,
              static_cast<std::size_t>(npanels_out * w.rows * rb));
  const std::int64_t ngroups = w.rows / w.group_size;
  for (std::int64_t gi = 0; gi < ngroups; ++gi) {
    std::memcpy(
        out.scales.data().data() + gi * npanels_out * kQuantPanel,
        w.scales.data().data() + (gi * npanels + p0) * kQuantPanel,
        static_cast<std::size_t>(npanels_out * kQuantPanel) * 4);
    std::memcpy(out.zeros_u8() + gi * npanels_out * kQuantPanel,
                w.zeros_u8() + (gi * npanels + p0) * kQuantPanel,
                static_cast<std::size_t>(npanels_out * kQuantPanel));
  }
  return out;
}

namespace {

ckpt::NamedTensors checkpoint_tensors(const std::vector<NamedQuant>& weights) {
  ckpt::NamedTensors nt;
  for (const NamedQuant& w : weights) {
    PTDP_CHECK(w.weight != nullptr && w.weight->defined()) << w.name;
    nt.emplace_back(w.name + ".q.payload", &w.weight->payload);
    nt.emplace_back(w.name + ".q.scales", &w.weight->scales);
    nt.emplace_back(w.name + ".q.zeros", &w.weight->zeros);
  }
  return nt;
}

}  // namespace

void save_quantized_checkpoint(const std::string& dir, std::uint64_t step,
                               const dist::Comm& tp,
                               const std::vector<NamedQuant>& weights,
                               QuantKind kind) {
  const std::string sd = ckpt::step_dir(dir, step);
  std::filesystem::create_directories(sd);
  const ckpt::NamedTensors nt = checkpoint_tensors(weights);
  const std::string shard = ckpt::shard_path(sd, 0, tp.rank(), 0);
  const ckpt::SaveResult res = ckpt::save_checkpoint(shard, nt, {step, 0});
  // Phase 2: gather every rank's intended (bytes, crc) — the all-gather
  // doubles as the shard-durability barrier — then rank 0 publishes the
  // dtype-tagged manifest and swings LATEST.
  std::vector<std::int64_t> bytes(static_cast<std::size_t>(tp.size()));
  std::vector<std::uint32_t> crcs(static_cast<std::size_t>(tp.size()));
  const std::int64_t my_bytes = res.bytes;
  const std::uint32_t my_crc = res.crc;
  tp.all_gather(std::span<const std::int64_t>(&my_bytes, 1),
                std::span<std::int64_t>(bytes));
  tp.all_gather(std::span<const std::uint32_t>(&my_crc, 1),
                std::span<std::uint32_t>(crcs));
  if (tp.rank() == 0) {
    ckpt::Manifest m;
    m.step = step;
    for (int t = 0; t < tp.size(); ++t) {
      ckpt::ManifestEntry e;
      e.file = std::filesystem::path(ckpt::shard_path(
                   "step-" + std::to_string(step), 0, t, 0)).generic_string();
      e.bytes = static_cast<std::uint64_t>(bytes[static_cast<std::size_t>(t)]);
      e.crc = crcs[static_cast<std::size_t>(t)];
      e.dtype = tensor::quant_kind_name(kind);
      e.has_master_weights = false;
      m.shards.push_back(std::move(e));
    }
    ckpt::write_manifest(dir, m);
  }
  tp.barrier();  // manifest visible before any rank proceeds to load
}

std::optional<std::uint64_t> load_quantized_checkpoint(
    const std::string& dir, const dist::Comm& tp,
    const std::vector<NamedQuant>& weights, QuantKind kind) {
  const auto committed =
      ckpt::find_latest_valid_checkpoint(dir, tensor::quant_kind_name(kind));
  if (!committed) return std::nullopt;
  const ckpt::NamedTensors nt = checkpoint_tensors(weights);
  const std::string shard =
      ckpt::shard_path(committed->shard_dir, 0, tp.rank(), 0);
  ckpt::load_checkpoint_by_name(shard, nt);
  return committed->step();
}

}  // namespace ptdp::quant
