#include "ptdp/sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "ptdp/core/analytics.hpp"

namespace ptdp::sim {

namespace {

constexpr double kFp16 = 2.0;

// Elementwise memory passes over the [s, b, h] stream per layer (LayerNorms,
// residuals, bias adds, GeLU, dropout). Fusion removes roughly half the
// round trips (§4.2's bias+GeLU and bias+dropout+add kernels).
constexpr double kStreamPassesUnfused = 48.0;
constexpr double kStreamPassesFused = 10.0;

// Memory passes over the [b·a, s, s] attention-score tensor (scale, mask,
// softmax, dropout). The fused scale+mask+softmax kernel makes one pass.
constexpr double kScorePassesUnfused = 10.0;
constexpr double kScorePassesFused = 1.5;

}  // namespace

// Per-kernel work below which the GPU cannot be filled (occupancy/wave
// quantization). This term produces Fig. 7's throughput-vs-microbatch ramp
// and is the reason the optimal microbatch size is model-dependent (§3.4).
constexpr double kOccupancyFlops = 2.5e10;

double gemm_time_batched(const ClusterSpec& hw, double batch, double m, double k,
                         double n) {
  const double flops = 2.0 * batch * m * k * n;
  const double bytes = kFp16 * batch * (m * k + k * n + m * n);
  const double tile = std::min({m, n, k});
  const double shape_eff = tile / (tile + 96.0);
  const double occupancy_eff = flops / (flops + kOccupancyFlops);
  const double eff = hw.gemm_efficiency_cap * shape_eff * occupancy_eff;
  const double compute = flops / (hw.peak_flops * std::max(eff, 0.01));
  const double memory = bytes / hw.hbm_bw;
  return std::max(compute, memory) + hw.kernel_overhead;
}

ChunkCost chunk_cost(const ClusterSpec& hw, const model::GptConfig& m,
                     const core::ParallelConfig& cfg, std::int64_t layers,
                     bool has_embedding, bool has_head, const CostOptions& options) {
  const double b = static_cast<double>(cfg.b);
  const double s = static_cast<double>(m.seq);
  const double h = static_cast<double>(m.hidden);
  const double a = static_cast<double>(m.heads);
  const double t = static_cast<double>(cfg.t);
  const double dk = h / a;
  const double rows = b * s;
  const bool tp_in_node = cfg.t <= hw.gpus_per_node;

  ChunkCost cost;

  // ---- per-layer GEMMs (forward) ----
  double layer_gemm = 0.0;
  layer_gemm += gemm_time_batched(hw, 1, rows, h, 3.0 * h / t);          // QKV
  layer_gemm += gemm_time_batched(hw, b * a / t, s, dk, s);              // QKᵀ
  layer_gemm += gemm_time_batched(hw, b * a / t, s, s, dk);              // PV
  layer_gemm += gemm_time_batched(hw, 1, rows, h / t, h);                // proj
  layer_gemm += gemm_time_batched(hw, 1, rows, h, 4.0 * h / t);          // fc1
  layer_gemm += gemm_time_batched(hw, 1, rows, 4.0 * h / t, h);          // fc2

  // ---- per-layer memory-bound ops (forward) ----
  const double stream_passes =
      options.fused_kernels ? kStreamPassesFused : kStreamPassesUnfused;
  const double score_passes =
      options.fused_kernels ? kScorePassesFused : kScorePassesUnfused;
  double layer_mem = memory_bound_time(hw, stream_passes * rows * h * kFp16);
  layer_mem += memory_bound_time(hw, score_passes * (b * a / t) * s * s * kFp16);

  const double layer_fwd = layer_gemm + layer_mem;
  // Backward: dgrad + wgrad double the GEMM work; elementwise backward is
  // comparable to forward.
  const double layer_bwd = 2.0 * layer_gemm + layer_mem;

  cost.fwd_compute = layers * layer_fwd;
  cost.bwd_compute = layers * layer_bwd;

  // ---- tensor-parallel all-reduce (f/g operators, §2.3) ----
  if (cfg.t > 1) {
    const double ar = ring_all_reduce_time(hw, rows * h * kFp16,
                                           cfg.t, tp_in_node);
    cost.fwd_tp_comm = layers * 2.0 * ar;  // one per MLP + one per attention
    cost.bwd_tp_comm = layers * 2.0 * ar;
  }

  // ---- embedding (first stage) ----
  if (has_embedding) {
    cost.fwd_compute += memory_bound_time(hw, 3.0 * rows * h * kFp16);
    cost.bwd_compute += memory_bound_time(hw, 2.0 * rows * h * kFp16);
    if (cfg.t > 1) {
      cost.fwd_tp_comm += ring_all_reduce_time(hw, rows * h * kFp16, cfg.t,
                                               tp_in_node);
    }
  }

  // ---- LM head: final LN + logits GEMM + vocab-parallel CE ----
  if (has_head) {
    const double V = static_cast<double>(m.vocab);
    const double logits = gemm_time_batched(hw, 1, rows, h, V / t);
    cost.fwd_compute += logits + memory_bound_time(hw, 3.0 * rows * (V / t) * kFp16);
    cost.bwd_compute += 2.0 * logits + memory_bound_time(hw, rows * (V / t) * kFp16);
    if (cfg.t > 1) {
      // Max + sum + target-logit scalar reductions, then dLN all-reduce.
      const double small = ring_all_reduce_time(hw, rows * 4.0, cfg.t, tp_in_node);
      cost.fwd_tp_comm += 3.0 * small;
      cost.bwd_tp_comm += ring_all_reduce_time(hw, rows * h * kFp16, cfg.t,
                                               tp_in_node);
    }
  }

  return cost;
}

double single_gpu_flops(const ClusterSpec& hw, const model::GptConfig& m,
                        std::int64_t b, const CostOptions& options) {
  core::ParallelConfig cfg;
  cfg.b = b;
  cfg.recompute = false;
  const ChunkCost cost = chunk_cost(hw, m, cfg, m.num_layers,
                                    /*has_embedding=*/true, /*has_head=*/true,
                                    options);
  // FLOPs counted without recomputation: 3 passes (fwd + 2x bwd) through
  // the per-layer GEMM term plus the logit layer.
  const double layer_term = core::layer_forward_flops(m, b);
  const double logit_term = 2.0 * b * m.seq * m.hidden * static_cast<double>(m.vocab);
  const double flops = 3.0 * (layer_term * m.num_layers + logit_term);
  return flops / (cost.fwd() + cost.bwd());
}

}  // namespace ptdp::sim
