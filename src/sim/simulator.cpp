#include "ptdp/sim/simulator.hpp"

#include <algorithm>
#include <vector>

namespace ptdp::sim {

namespace {
constexpr double kFp16 = 2.0;
constexpr double kFp32 = 4.0;
}  // namespace

double stage_transfer_time(const ClusterSpec& hw, const model::GptConfig& m,
                           const core::ParallelConfig& cfg) {
  const double bytes =
      static_cast<double>(cfg.b) * m.seq * m.hidden * kFp16;
  // Consecutive pipeline stages are on different nodes once a stage's
  // (t·d) block fills a node — the standard large-model regime.
  const bool cross_node =
      static_cast<std::int64_t>(cfg.t) * cfg.d >= hw.gpus_per_node;
  if (!cfg.scatter_gather || cfg.t == 1) {
    // Every tensor rank redundantly sends the full tensor on its own link.
    // In 1F1B steady state the forward and backward tensors are in flight
    // simultaneously in both directions, so cross-node links see ~2x
    // contention that the (1/t-sized) scatter/gather transfers avoid.
    const double contention = cross_node && cfg.t > 1 ? 2.0 : 1.0;
    return p2p_time(hw, bytes * contention, cross_node);
  }
  // §4.1: send 1/t of the tensor per IB link, then all-gather over NVLink.
  return p2p_time(hw, bytes / cfg.t, cross_node) +
         ring_all_gather_time(hw, bytes, cfg.t, /*within_node=*/true);
}

IterationResult simulate_iteration(const ClusterSpec& hw, const model::GptConfig& m,
                                   const core::ParallelConfig& cfg,
                                   std::int64_t global_batch,
                                   const SimOptions& options) {
  cfg.validate(m, global_batch);
  const pipeline::ScheduleParams sp = cfg.schedule_params(global_batch);
  const int P = pipeline::num_virtual_stages(sp);
  const std::int64_t layers_per_stage = m.num_layers / P;

  // Per-virtual-stage costs (stage 0 embeds, stage P-1 owns the head).
  CostOptions cost_opts{options.fused_kernels};
  std::vector<ChunkCost> costs(static_cast<std::size_t>(P));
  for (int vs = 0; vs < P; ++vs) {
    costs[static_cast<std::size_t>(vs)] =
        chunk_cost(hw, m, cfg, layers_per_stage, vs == 0, vs == P - 1, cost_opts);
  }
  const double transfer = cfg.p > 1 ? stage_transfer_time(hw, m, cfg) : 0.0;

  // ---- event-driven execution of the actual schedules ----
  std::vector<std::vector<pipeline::Op>> ops(static_cast<std::size_t>(sp.p));
  std::vector<std::size_t> cursor(static_cast<std::size_t>(sp.p), 0);
  std::vector<double> rank_time(static_cast<std::size_t>(sp.p), 0.0);
  std::size_t remaining = 0;
  for (int r = 0; r < sp.p; ++r) {
    ops[static_cast<std::size_t>(r)] = pipeline::build_rank_schedule(sp, r);
    remaining += ops[static_cast<std::size_t>(r)].size();
  }
  auto idx = [&](int mb, int vs) {
    return static_cast<std::size_t>(mb) * static_cast<std::size_t>(P) +
           static_cast<std::size_t>(vs);
  };
  std::vector<double> fwd_done(static_cast<std::size_t>(sp.m * P), -1.0);
  std::vector<double> bwd_done(static_cast<std::size_t>(sp.m * P), -1.0);

  bool progressed = true;
  while (remaining > 0) {
    PTDP_CHECK(progressed) << "simulated schedule deadlocked";
    progressed = false;
    for (int r = 0; r < sp.p; ++r) {
      auto& cur = cursor[static_cast<std::size_t>(r)];
      while (cur < ops[static_cast<std::size_t>(r)].size()) {
        const pipeline::Op& op = ops[static_cast<std::size_t>(r)][cur];
        const int vs = pipeline::virtual_stage(r, op.chunk, sp.p);
        const ChunkCost& c = costs[static_cast<std::size_t>(vs)];
        // Receiving a stage boundary tensor occupies the GPU (NCCL p2p and
        // the scatter/gather's NVLink all-gather both run on SMs), so the
        // transfer is serialized into the dependent op's duration — this is
        // what makes the §4.1 optimization worth ~10% end to end.
        double ready, duration;
        if (op.kind == pipeline::Op::Kind::kForward) {
          ready = vs == 0 ? 0.0 : fwd_done[idx(op.microbatch, vs - 1)];
          duration = c.fwd() + (vs > 0 ? transfer : 0.0);
        } else {
          if (vs == P - 1) {
            ready = fwd_done[idx(op.microbatch, vs)];
            duration = c.bwd();
          } else {
            ready = bwd_done[idx(op.microbatch, vs + 1)];
            duration = c.bwd() + transfer;
          }
          // §3.5: recomputation replays the forward before the backward.
          if (cfg.recompute) duration += c.fwd_compute;
        }
        if (ready < 0.0) break;
        const double start = std::max(rank_time[static_cast<std::size_t>(r)], ready);
        const double end = start + duration;
        rank_time[static_cast<std::size_t>(r)] = end;
        (op.kind == pipeline::Op::Kind::kForward ? fwd_done
                                                 : bwd_done)[idx(op.microbatch, vs)] =
            end;
        ++cur;
        --remaining;
        progressed = true;
      }
    }
  }
  double makespan = 0.0;
  for (double t : rank_time) makespan = std::max(makespan, t);

  // Ideal per-rank compute time (rank 0's chunk set; ranks are symmetric up
  // to embedding/head extras — take the max over ranks for the bubble).
  double ideal = 0.0;
  for (int r = 0; r < sp.p; ++r) {
    double busy = 0.0;
    for (int c = 0; c < sp.v; ++c) {
      const int vs = pipeline::virtual_stage(r, c, sp.p);
      const ChunkCost& cc = costs[static_cast<std::size_t>(vs)];
      double per_mb = cc.fwd() + cc.bwd();
      if (cfg.recompute) per_mb += cc.fwd_compute;
      busy += per_mb * sp.m;
    }
    ideal = std::max(ideal, busy);
  }

  // ---- end-of-batch work: data-parallel all-reduce + optimizer ----
  const double params = core::params_per_gpu(m, cfg);
  const bool dp_in_node =
      static_cast<std::int64_t>(cfg.t) * cfg.d <= hw.gpus_per_node;
  const double dp_time =
      cfg.d > 1 ? ring_all_reduce_time(hw, params * kFp32, cfg.d, dp_in_node) : 0.0;
  // Embedding-group grad sync (first/last stage word embeddings).
  const double embed_sync =
      cfg.p > 1 ? p2p_time(hw, (static_cast<double>(m.vocab) / cfg.t) * m.hidden *
                                   kFp32,
                           /*cross_node=*/true)
                : 0.0;
  // Optimizer: read grads + master/m/v read-modify-write (~6 fp32 passes).
  const double opt_time = memory_bound_time(hw, params * 6.0 * kFp32);

  IterationResult res;
  res.pipeline_makespan = makespan;
  res.iteration_seconds = makespan + dp_time + embed_sync + opt_time;
  res.bubble_fraction = (makespan - ideal) / ideal;

  // FLOPs counted as executed: Eq. (3) assumes recomputation (4 passes);
  // without it the transformer term takes 3 of 4 passes.
  double flops = core::flops_per_iteration(m, global_batch);
  if (!cfg.recompute) flops *= 0.75;
  res.aggregate_flops = flops / res.iteration_seconds;
  res.per_gpu_flops = res.aggregate_flops / static_cast<double>(cfg.n());
  res.percent_of_peak = res.per_gpu_flops / hw.peak_flops;
  res.sequences_per_second =
      static_cast<double>(global_batch) / res.iteration_seconds;

  res.p2p_seconds = transfer * 2.0 * sp.m * sp.v;
  res.tp_comm_seconds =
      (costs[0].fwd_tp_comm + costs[0].bwd_tp_comm) * sp.m * sp.v;
  res.dp_comm_seconds = dp_time;

  if (options.check_memory) {
    const auto mem = core::memory_per_gpu(m, cfg, global_batch);
    res.memory_bytes = mem.total();
    res.oom = !mem.fits(hw.gpu_memory);
  }
  return res;
}

core::ThroughputModel make_throughput_model(const ClusterSpec& hw,
                                            const SimOptions& options) {
  return [hw, options](const model::GptConfig& m, const core::ParallelConfig& cfg,
                       std::int64_t B) {
    const IterationResult r = simulate_iteration(hw, m, cfg, B, options);
    return r.oom ? 1e18 : r.iteration_seconds;
  };
}

}  // namespace ptdp::sim
