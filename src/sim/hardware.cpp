#include "ptdp/sim/hardware.hpp"

#include <algorithm>
#include <cmath>

namespace ptdp::sim {

double gemm_time(const ClusterSpec& hw, double m, double k, double n) {
  const double flops = 2.0 * m * k * n;
  const double bytes = 2.0 * (m * k + k * n + m * n);  // fp16 operands + output
  // Shape-dependent efficiency: tensor cores need large tiles in every
  // dimension; the harmonic-mean tile factor drives the Fig. 7 ramp of
  // throughput with microbatch size.
  const double tile = std::min({m, n, k});
  const double shape_eff = tile / (tile + 96.0);
  const double eff = hw.gemm_efficiency_cap * shape_eff;
  const double compute = flops / (hw.peak_flops * std::max(eff, 0.01));
  const double memory = bytes / hw.hbm_bw;
  return std::max(compute, memory) + hw.kernel_overhead;
}

double memory_bound_time(const ClusterSpec& hw, double bytes) {
  return bytes / hw.hbm_bw + hw.kernel_overhead;
}

double ring_all_reduce_time(const ClusterSpec& hw, double bytes, int group,
                            bool within_node) {
  if (group <= 1 || bytes <= 0.0) return 0.0;
  const double bw = within_node ? hw.nvlink_bw : hw.ib_link_bw;
  const double lat = within_node ? hw.nvlink_latency : hw.ib_latency;
  const double volume = 2.0 * (static_cast<double>(group - 1) / group) * bytes;
  return volume / bw + 2.0 * (group - 1) * lat;
}

double ring_all_gather_time(const ClusterSpec& hw, double bytes, int group,
                            bool within_node) {
  if (group <= 1 || bytes <= 0.0) return 0.0;
  const double bw = within_node ? hw.nvlink_bw : hw.ib_link_bw;
  const double lat = within_node ? hw.nvlink_latency : hw.ib_latency;
  const double volume = (static_cast<double>(group - 1) / group) * bytes;
  return volume / bw + (group - 1) * lat;
}

double p2p_time(const ClusterSpec& hw, double bytes, bool cross_node) {
  const double bw = cross_node ? hw.ib_link_bw : hw.nvlink_bw;
  const double lat = cross_node ? hw.ib_latency : hw.nvlink_latency;
  return bytes / bw + lat;
}

}  // namespace ptdp::sim
