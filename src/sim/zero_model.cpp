#include "ptdp/sim/zero_model.hpp"

#include <algorithm>

namespace ptdp::sim {

namespace {
constexpr double kFp16 = 2.0;
constexpr double kFp32 = 4.0;
}  // namespace

ZeroResult simulate_zero3_iteration(const ClusterSpec& hw, const model::GptConfig& m,
                                    std::int64_t global_batch, std::int64_t n_gpus,
                                    std::int64_t b, const SimOptions& options) {
  PTDP_CHECK_EQ(global_batch % (n_gpus * b), 0)
      << "B=" << global_batch << " n=" << n_gpus << " b=" << b;
  const std::int64_t microbatches = global_batch / (n_gpus * b);

  // Compute: the full model runs locally (no model parallelism).
  core::ParallelConfig cfg;
  cfg.b = b;
  cfg.recompute = true;
  const ChunkCost cost = chunk_cost(hw, m, cfg, m.num_layers, /*has_embedding=*/true,
                                    /*has_head=*/true,
                                    CostOptions{options.fused_kernels});
  const double per_mb = cost.fwd() + cost.bwd() + cost.fwd_compute;  // + recompute
  const double compute = per_mb * static_cast<double>(microbatches);

  // Communication per step and per worker (cross-node ring over n workers):
  //   2× parameter all-gather (fwd + bwd) of the fp16 weights,
  //   1× grad reduce-scatter (fp16 grads, ZeRO-2 style).
  const double P = m.paper_params();
  const double ag =
      ring_all_gather_time(hw, P * kFp16, static_cast<int>(n_gpus),
                           /*within_node=*/false);
  const double rs =
      ring_all_gather_time(hw, P * kFp16, static_cast<int>(n_gpus),
                           /*within_node=*/false);  // same volume as gather
  const double comm = 2.0 * ag + rs;

  // DeepSpeed prefetches the next layer's gather under the current layer's
  // compute, so the exposed time is max(compute, comm) plus a residual
  // non-overlappable fraction (layer-boundary stalls, optimizer).
  constexpr double kNonOverlap = 0.45;
  const double params_per_gpu = P / static_cast<double>(n_gpus);
  const double opt_time = memory_bound_time(hw, params_per_gpu * 6.0 * kFp32);

  ZeroResult res;
  res.compute_seconds = compute;
  res.comm_seconds = comm;
  res.iteration_seconds =
      std::max(compute, comm) + kNonOverlap * std::min(compute, comm) + opt_time;

  const double flops = core::flops_per_iteration(m, global_batch);
  res.aggregate_flops = flops / res.iteration_seconds;
  res.per_gpu_flops = res.aggregate_flops / static_cast<double>(n_gpus);

  // Memory: 1/n of (fp16 params + fp32 master + moments + grads) plus the
  // working all-gathered layer params and activations for one microbatch.
  const double sharded_state = (P / static_cast<double>(n_gpus)) *
                               (kFp16 + 3.0 * kFp32 + kFp16);
  const double working_params =
      (P / static_cast<double>(m.num_layers)) * kFp16 * 4.0;  // a few layers live
  const double acts = static_cast<double>(m.num_layers) *
                      core::activation_bytes_per_layer(m, b, /*recompute=*/true) +
                      core::activation_bytes_per_layer(m, b, /*recompute=*/false);
  res.memory_bytes = sharded_state + working_params + acts;
  res.oom = res.memory_bytes > hw.gpu_memory;

  // Table 2's "training time for 300B tokens".
  const double iters = 300e9 / (static_cast<double>(global_batch) * m.seq);
  res.training_days_300b_tokens = iters * res.iteration_seconds / 86400.0;
  return res;
}

}  // namespace ptdp::sim
