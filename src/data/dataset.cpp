#include "ptdp/data/dataset.hpp"

#include <cmath>

#include "ptdp/runtime/check.hpp"

namespace ptdp::data {

SyntheticCorpus::SyntheticCorpus(std::int64_t vocab, std::uint64_t seed)
    : vocab_(vocab), seed_(seed) {
  PTDP_CHECK_GE(vocab, 4);
  // A fixed random permutation-ish successor rule: token x is followed by
  // bigram_successor_[x] 70% of the time — structure a language model can
  // learn quickly.
  bigram_successor_.resize(static_cast<std::size_t>(vocab));
  Rng rng(seed, substream(0xB16A));
  for (std::int64_t i = 0; i < vocab; ++i) {
    bigram_successor_[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(vocab)));
  }
}

std::int32_t SyntheticCorpus::next_token(std::int32_t prev, Rng& rng) const {
  if (rng.next_bernoulli(0.7)) {
    return bigram_successor_[static_cast<std::size_t>(prev)];
  }
  // Zipfian-ish unigram: token k with weight 1/(k+2). Inverse-CDF via
  // rejection-free power transform approximation.
  const double u = rng.next_uniform();
  const double z = std::pow(static_cast<double>(vocab_), u);  // log-uniform
  std::int64_t k = static_cast<std::int64_t>(z) - 1;
  if (k < 0) k = 0;
  if (k >= vocab_) k = vocab_ - 1;
  return static_cast<std::int32_t>(k);
}

std::vector<std::int32_t> SyntheticCorpus::generate(std::int64_t n) const {
  PTDP_CHECK_GT(n, 0);
  std::vector<std::int32_t> stream(static_cast<std::size_t>(n));
  Rng rng(seed_, substream(0x5EED));
  stream[0] = static_cast<std::int32_t>(rng.next_below(
      static_cast<std::uint64_t>(vocab_)));
  for (std::int64_t i = 1; i < n; ++i) {
    stream[static_cast<std::size_t>(i)] =
        next_token(stream[static_cast<std::size_t>(i - 1)], rng);
  }
  return stream;
}

TokenDataset::TokenDataset(std::vector<std::int32_t> stream, std::int64_t seq)
    : stream_(std::move(stream)), seq_(seq) {
  PTDP_CHECK_GT(seq, 0);
  PTDP_CHECK_GT(static_cast<std::int64_t>(stream_.size()), seq)
      << "stream too short for one sample";
  num_samples_ = (static_cast<std::int64_t>(stream_.size()) - 1) / seq_;
}

void TokenDataset::sample(std::int64_t index, std::int32_t* tokens,
                          std::int32_t* targets) const {
  PTDP_CHECK(index >= 0 && index < num_samples_) << "sample " << index;
  const std::int64_t base = index * seq_;
  for (std::int64_t i = 0; i < seq_; ++i) {
    tokens[i] = stream_[static_cast<std::size_t>(base + i)];
    targets[i] = stream_[static_cast<std::size_t>(base + i + 1)];
  }
}

ShardedLoader::ShardedLoader(const TokenDataset& dataset, std::int64_t global_batch,
                             std::int64_t microbatch_size, int d, int d_rank,
                             std::uint64_t seed)
    : dataset_(dataset),
      global_batch_(global_batch),
      micro_b_(microbatch_size),
      d_(d),
      d_rank_(d_rank),
      seed_(seed) {
  PTDP_CHECK_GT(global_batch, 0);
  PTDP_CHECK_GT(microbatch_size, 0);
  PTDP_CHECK(0 <= d_rank && d_rank < d);
  PTDP_CHECK_EQ(global_batch % (static_cast<std::int64_t>(d) * microbatch_size), 0)
      << "B=" << global_batch << " must divide by d*b=" << d * microbatch_size;
  m_ = global_batch / (static_cast<std::int64_t>(d) * microbatch_size);
}

std::vector<model::Microbatch> ShardedLoader::next_batch(std::int64_t step) const {
  const std::int64_t s = dataset_.seq();
  std::vector<model::Microbatch> mbs;
  mbs.reserve(static_cast<std::size_t>(m_));
  // Global sample index for (replica slot r, position within batch k):
  // drawn from a step-keyed stream so every layout agrees.
  Rng pick(seed_, substream(0xDA7A, static_cast<std::uint64_t>(step)));
  std::vector<std::int64_t> global_samples(static_cast<std::size_t>(global_batch_));
  for (auto& gi : global_samples) {
    gi = static_cast<std::int64_t>(pick.next_below(
        static_cast<std::uint64_t>(dataset_.size())));
  }
  // This rank's slice: samples [d_rank * B/d, (d_rank+1) * B/d).
  const std::int64_t per_rank = global_batch_ / d_;
  for (std::int64_t j = 0; j < m_; ++j) {
    model::Microbatch mb;
    mb.s = s;
    mb.b = micro_b_;
    mb.tag = substream(static_cast<std::uint64_t>(step),
                       static_cast<std::uint64_t>(d_rank_ * m_ + j) + 1);
    mb.tokens.resize(static_cast<std::size_t>(s * micro_b_));
    mb.targets.resize(static_cast<std::size_t>(s * micro_b_));
    // Sequence-major layout: element (i_s, i_b) at index i_s*b + i_b.
    std::vector<std::int32_t> tok(static_cast<std::size_t>(s)),
        tgt(static_cast<std::size_t>(s));
    for (std::int64_t ib = 0; ib < micro_b_; ++ib) {
      const std::int64_t gi =
          global_samples[static_cast<std::size_t>(d_rank_ * per_rank + j * micro_b_ +
                                                  ib)];
      dataset_.sample(gi, tok.data(), tgt.data());
      for (std::int64_t is = 0; is < s; ++is) {
        mb.tokens[static_cast<std::size_t>(is * micro_b_ + ib)] =
            tok[static_cast<std::size_t>(is)];
        mb.targets[static_cast<std::size_t>(is * micro_b_ + ib)] =
            tgt[static_cast<std::size_t>(is)];
      }
    }
    mbs.push_back(std::move(mb));
  }
  return mbs;
}

void apply_mlm_masking(model::Microbatch& mb, std::int64_t vocab,
                       const MlmOptions& options, std::uint64_t seed) {
  PTDP_CHECK(options.mask_prob > 0.0f && options.mask_prob <= 1.0f);
  const std::int32_t mask_token =
      options.mask_token >= 0 ? options.mask_token
                              : static_cast<std::int32_t>(vocab - 1);
  PTDP_CHECK(mask_token >= 0 && mask_token < vocab);
  const std::size_t n = mb.tokens.size();
  PTDP_CHECK_GT(n, 0u);

  mb.targets = mb.tokens;  // MLM predicts the original token at each position
  mb.loss_weights.assign(n, 0.0f);
  Rng rng(seed, substream(0x3153, mb.tag));
  std::size_t selected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!rng.next_bernoulli(options.mask_prob)) continue;
    ++selected;
    mb.loss_weights[i] = 1.0f;
    const double u = rng.next_uniform();
    if (u < options.keep_prob) {
      // left unchanged (the model must still predict it)
    } else if (u < options.keep_prob + options.random_prob) {
      mb.tokens[i] = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(vocab)));
    } else {
      mb.tokens[i] = mask_token;
    }
  }
  if (selected == 0) {
    // Degenerate draw on a tiny microbatch: force one position so the
    // weighted loss is well defined.
    const std::size_t i = static_cast<std::size_t>(rng.next_below(n));
    mb.loss_weights[i] = 1.0f;
    mb.tokens[i] = mask_token;
  }
}

}  // namespace ptdp::data
