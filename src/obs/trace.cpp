#include "ptdp/obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace ptdp::obs {

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kCompute: return "compute";
    case Cat::kP2p: return "p2p";
    case Cat::kCollective: return "collective";
    case Cat::kCkpt: return "ckpt";
    case Cat::kEngine: return "engine";
    case Cat::kRuntime: return "runtime";
  }
  return "unknown";
}

std::int64_t TraceEvent::arg(const char* key, std::int64_t fallback) const {
  for (const Arg& a : args) {
    if (a.key != nullptr && std::strcmp(a.key, key) == 0) return a.value;
  }
  return fallback;
}

void Span::arg(const char* key, std::int64_t value) {
  if (!armed_) return;
  for (auto& slot : ev_.args) {
    if (slot.key != nullptr && std::strcmp(slot.key, key) == 0) {
      slot.value = value;
      return;
    }
    if (slot.key == nullptr) {
      slot = {key, value};
      return;
    }
  }
}

void instant(const char* name, Cat cat,
             std::initializer_list<TraceEvent::Arg> args) {
  if (!spans_on()) return;
  TraceEvent ev;
  ev.ts_ns = steady_now_ns();
  ev.name = name;
  ev.cat = cat;
  ev.rank = bound_rank();
  int i = 0;
  for (const auto& a : args) {
    if (i >= TraceEvent::kMaxArgs) break;
    ev.args[static_cast<std::size_t>(i++)] = a;
  }
  Tracer::instance().emit(ev);
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_thread_capacity(std::size_t events) {
  capacity_.store(std::max<std::size_t>(events, 16), std::memory_order_relaxed);
}

// Each thread caches a pointer to its registered buffer, revalidated
// against the reset epoch. The shared_ptr copy keeps the buffer alive even
// if a concurrent reset() drops it from the registry mid-push.
Tracer::ThreadBuffer* Tracer::thread_buffer() {
  struct Slot {
    std::shared_ptr<ThreadBuffer> buf;
    std::uint64_t epoch = ~std::uint64_t{0};
  };
  thread_local Slot slot;
  const std::uint64_t now_epoch = epoch_.load(std::memory_order_acquire);
  if (!slot.buf || slot.epoch != now_epoch) {
    auto fresh =
        std::make_shared<ThreadBuffer>(capacity_.load(std::memory_order_relaxed));
    {
      std::lock_guard lock(registry_mu_);
      buffers_.push_back(fresh);
    }
    slot.buf = std::move(fresh);
    slot.epoch = now_epoch;
  }
  return slot.buf.get();
}

void Tracer::emit(const TraceEvent& event) {
  ThreadBuffer* buf = thread_buffer();
  std::lock_guard lock(buf->mu);
  buf->ring[static_cast<std::size_t>(buf->pushed % buf->ring.size())] = event;
  ++buf->pushed;
}

void Tracer::reset() {
  std::lock_guard lock(registry_mu_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  buffers_.clear();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard lock(registry_mu_);
    bufs = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& b : bufs) {
    std::lock_guard lock(b->mu);
    const std::size_t cap = b->ring.size();
    const std::size_t live = static_cast<std::size_t>(
        std::min<std::uint64_t>(b->pushed, cap));
    // Oldest-first: when wrapped, the oldest live event sits at pushed % cap.
    const std::size_t start =
        b->pushed > cap ? static_cast<std::size_t>(b->pushed % cap) : 0;
    for (std::size_t i = 0; i < live; ++i) {
      out.push_back(b->ring[(start + i) % cap]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::uint64_t Tracer::events_recorded() const {
  std::lock_guard lock(registry_mu_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard inner(b->mu);
    n += b->pushed;
  }
  return n;
}

std::uint64_t Tracer::events_dropped() const {
  std::lock_guard lock(registry_mu_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard inner(b->mu);
    if (b->pushed > b->ring.size()) n += b->pushed - b->ring.size();
  }
  return n;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

void append_event(std::string& out, const TraceEvent& ev) {
  char num[64];
  out += "{\"name\":\"";
  append_escaped(out, ev.name != nullptr ? ev.name : "?");
  out += "\",\"cat\":\"";
  out += cat_name(ev.cat);
  // Instant events use ph "i" with thread scope; spans are complete "X".
  out += ev.wall_ns < 0 ? "\",\"ph\":\"i\",\"s\":\"t" : "\",\"ph\":\"X";
  out += "\",\"pid\":0,\"tid\":";
  std::snprintf(num, sizeof(num), "%d", ev.rank);
  out += num;
  // Microsecond timestamps with ns precision kept in the fraction.
  std::snprintf(num, sizeof(num), ",\"ts\":%.3f",
                static_cast<double>(ev.ts_ns) / 1e3);
  out += num;
  if (ev.wall_ns >= 0) {
    std::snprintf(num, sizeof(num), ",\"dur\":%.3f",
                  static_cast<double>(ev.wall_ns) / 1e3);
    out += num;
  }
  out += ",\"args\":{";
  bool first = true;
  if (ev.cpu_ns >= 0) {
    std::snprintf(num, sizeof(num), "\"cpu_ns\":%" PRId64, ev.cpu_ns);
    out += num;
    first = false;
  }
  for (const auto& a : ev.args) {
    if (a.key == nullptr) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, a.key);
    std::snprintf(num, sizeof(num), "\":%" PRId64, a.value);
    out += num;
  }
  out += "}}";
}

}  // namespace

std::string Tracer::chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out;
  out.reserve(events.size() * 160 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"ptdp-trace-v1\","
         "\"dropped_events\":";
  char num[32];
  std::snprintf(num, sizeof(num), "%llu",
                static_cast<unsigned long long>(events_dropped()));
  out += num;
  out += "},\"traceEvents\":[";
  // Thread-name metadata so Perfetto labels each lane "rank N".
  std::vector<std::int32_t> ranks;
  for (const TraceEvent& ev : events) {
    if (std::find(ranks.begin(), ranks.end(), ev.rank) == ranks.end()) {
      ranks.push_back(ev.rank);
    }
  }
  std::sort(ranks.begin(), ranks.end());
  bool first = true;
  for (std::int32_t r : ranks) {
    if (!first) out.push_back(',');
    first = false;
    char meta[160];
    std::snprintf(meta, sizeof(meta),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"name\":\"%s\"}}",
                  r, r < 0 ? "unbound" : ("rank " + std::to_string(r)).c_str());
    out += meta;
  }
  for (const TraceEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    append_event(out, ev);
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ptdp::obs
