#include "ptdp/obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>

namespace ptdp::obs {

namespace {

struct OpSample {
  int rank = -1;       ///< world rank (trace tid)
  int stage = 0;       ///< pipeline rank
  bool backward = false;
  int mb = 0;
  int vs = 0;
  std::int64_t ts_ns = 0;
  double dur_ns = 0;
};

struct GroupKey {
  std::int64_t pipe;
  std::int64_t batch;
  bool operator<(const GroupKey& o) const {
    return pipe != o.pipe ? pipe < o.pipe : batch < o.batch;
  }
};

// Replays one batch's traced ops under the pipeline dependency rules and
// fills makespan / ideal / bubble / critical path.
BatchTimeline replay_batch(const GroupKey& key, std::vector<OpSample> ops) {
  BatchTimeline out;
  out.pipe = key.pipe;
  out.batch = key.batch;

  // Per-rank program order = traced start order.
  std::map<int, std::vector<std::size_t>> by_rank;  // world rank -> op idx
  std::stable_sort(ops.begin(), ops.end(),
                   [](const OpSample& a, const OpSample& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  int max_vs = 0, max_mb = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    by_rank[ops[i].rank].push_back(i);
    max_vs = std::max(max_vs, ops[i].vs);
    max_mb = std::max(max_mb, ops[i].mb);
  }
  out.p = static_cast<int>(by_rank.size());
  out.m = max_mb + 1;
  out.num_virtual_stages = max_vs + 1;

  // Worklist replay. end[kind][(mb, vs)] = completion time; `pred` tracks
  // which constraint bound each op's start for critical-path walkback.
  std::map<std::pair<int, int>, std::size_t> fwd_of, bwd_of;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    (ops[i].backward ? bwd_of : fwd_of)[{ops[i].mb, ops[i].vs}] = i;
  }
  std::vector<double> start(ops.size(), -1.0), end(ops.size(), -1.0);
  std::vector<std::ptrdiff_t> pred(ops.size(), -1);
  std::map<int, std::size_t> cursor;  // rank -> next unscheduled index

  bool progressed = true;
  std::size_t scheduled = 0;
  while (scheduled < ops.size() && progressed) {
    progressed = false;
    for (auto& [rank, order] : by_rank) {
      std::size_t& cur = cursor[rank];
      while (cur < order.size()) {
        const std::size_t i = order[cur];
        const OpSample& op = ops[i];
        // Cross-stage dependency.
        std::ptrdiff_t dep = -1;
        if (!op.backward) {
          if (op.vs > 0) {
            const auto it = fwd_of.find({op.mb, op.vs - 1});
            if (it == fwd_of.end()) { dep = -1; }  // boundary not traced
            else dep = static_cast<std::ptrdiff_t>(it->second);
          }
        } else {
          if (op.vs < max_vs) {
            const auto it = bwd_of.find({op.mb, op.vs + 1});
            if (it == bwd_of.end()) dep = -1;
            else dep = static_cast<std::ptrdiff_t>(it->second);
          } else {
            const auto it = fwd_of.find({op.mb, op.vs});
            if (it != fwd_of.end()) dep = static_cast<std::ptrdiff_t>(it->second);
          }
        }
        if (dep >= 0 && end[static_cast<std::size_t>(dep)] < 0) break;  // wait

        double s = 0.0;
        std::ptrdiff_t bound_by = -1;
        if (cur > 0) {
          const std::size_t prev = order[cur - 1];
          s = end[prev];
          bound_by = static_cast<std::ptrdiff_t>(prev);
        }
        if (dep >= 0 && end[static_cast<std::size_t>(dep)] > s) {
          s = end[static_cast<std::size_t>(dep)];
          bound_by = dep;
        }
        start[i] = s;
        end[i] = s + ops[i].dur_ns;
        pred[i] = bound_by;
        ++cur;
        ++scheduled;
        progressed = true;
      }
    }
  }
  // A dependency cycle (malformed trace) leaves ops unscheduled; report
  // what was schedulable rather than hanging.

  double makespan = 0;
  std::ptrdiff_t last = -1;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (end[i] > makespan) {
      makespan = end[i];
      last = static_cast<std::ptrdiff_t>(i);
    }
  }
  out.makespan_ns = makespan;

  double busy_total = 0;
  for (const auto& [rank, order] : by_rank) {
    double busy = 0;
    for (std::size_t i : order) busy += ops[i].dur_ns;
    busy_total += busy;
  }
  out.ideal_ns = out.p > 0 ? busy_total / out.p : 0.0;
  out.bubble_fraction =
      out.ideal_ns > 0 ? (out.makespan_ns - out.ideal_ns) / out.ideal_ns : 0.0;

  // Critical path: walk the binding constraints back from the last op.
  for (std::ptrdiff_t i = last; i >= 0; i = pred[static_cast<std::size_t>(i)]) {
    const OpSample& op = ops[static_cast<std::size_t>(i)];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "stage%d:%s(mb=%d,vs=%d)", op.stage,
                  op.backward ? "bwd" : "fwd", op.mb, op.vs);
    out.critical_path.push_back(buf);
    out.critical_path_ns += op.dur_ns;
  }
  std::reverse(out.critical_path.begin(), out.critical_path.end());
  return out;
}

}  // namespace

TimelineReport analyze_events(const std::vector<TraceEvent>& events,
                              const TimelineOptions& options) {
  TimelineReport report;
  std::map<GroupKey, std::vector<OpSample>> groups;
  std::map<int, RankTimeline> ranks;
  std::int64_t wall_min = 0, wall_max = 0;
  bool have_window = false;

  for (const TraceEvent& ev : events) {
    if (ev.name == nullptr || ev.wall_ns < 0) continue;
    const bool is_fwd = std::strcmp(ev.name, "fwd") == 0;
    const bool is_bwd = std::strcmp(ev.name, "bwd") == 0;
    if (is_fwd || is_bwd) {
      RankTimeline& rt = ranks[ev.rank];
      rt.rank = ev.rank;
      rt.ops += 1;
      rt.wall_busy_ns += static_cast<double>(ev.wall_ns);
      const double dur = options.use_cpu_durations && ev.cpu_ns >= 0
                             ? static_cast<double>(ev.cpu_ns)
                             : static_cast<double>(ev.wall_ns);
      rt.busy_ns += dur;
      if (!have_window || ev.ts_ns < wall_min) wall_min = ev.ts_ns;
      if (!have_window || ev.ts_ns + ev.wall_ns > wall_max) {
        wall_max = ev.ts_ns + ev.wall_ns;
      }
      have_window = true;

      OpSample op;
      op.rank = ev.rank;
      op.stage = static_cast<int>(ev.arg("stage", ev.rank));
      op.backward = is_bwd;
      op.mb = static_cast<int>(ev.arg("mb", 0));
      op.vs = static_cast<int>(ev.arg("vs", op.stage));
      op.ts_ns = ev.ts_ns;
      op.dur_ns = dur;
      groups[{ev.arg("pipe", 0), ev.arg("batch", 0)}].push_back(op);
    } else if (std::strcmp(ev.name, "recv_wait") == 0) {
      RankTimeline& rt = ranks[ev.rank];
      rt.rank = ev.rank;
      rt.recv_wait_ns += static_cast<double>(ev.wall_ns);
    } else if (std::strcmp(ev.name, "p2p_send") == 0) {
      RankTimeline& rt = ranks[ev.rank];
      rt.rank = ev.rank;
      rt.p2p_messages += 1;
      rt.p2p_bytes_sent += static_cast<std::uint64_t>(ev.arg("bytes", 0));
    }
  }

  for (auto& [key, ops] : groups) {
    report.batches.push_back(replay_batch(key, std::move(ops)));
  }
  for (auto& [rank, rt] : ranks) report.ranks.push_back(rt);

  if (!report.batches.empty()) {
    std::vector<double> bubbles;
    for (const BatchTimeline& b : report.batches) {
      bubbles.push_back(b.bubble_fraction);
    }
    std::sort(bubbles.begin(), bubbles.end());
    report.bubble_fraction = bubbles[bubbles.size() / 2];

    // Analytic (p−1)/(v·m) from the largest observed batch: v = virtual
    // stages / pipeline ranks.
    const BatchTimeline& b0 = report.batches.front();
    if (b0.p > 0 && b0.m > 0) {
      const int v = std::max(1, b0.num_virtual_stages / b0.p);
      report.analytic_bubble_fraction =
          static_cast<double>(b0.p - 1) / (static_cast<double>(v) * b0.m);
    }
  }

  if (have_window && !report.ranks.empty()) {
    report.wall_window_ns = static_cast<double>(wall_max - wall_min);
    double busy_sum = 0;
    for (const RankTimeline& rt : report.ranks) busy_sum += rt.wall_busy_ns;
    const double mean_busy = busy_sum / static_cast<double>(report.ranks.size());
    report.wall_bubble_fraction =
        mean_busy > 0 ? (report.wall_window_ns - mean_busy) / mean_busy : 0.0;
  }

  // Stragglers: busy time beyond straggler_factor × median.
  if (report.ranks.size() >= 2) {
    std::vector<double> busy;
    for (const RankTimeline& rt : report.ranks) busy.push_back(rt.busy_ns);
    std::sort(busy.begin(), busy.end());
    const double median = busy[busy.size() / 2];
    for (const RankTimeline& rt : report.ranks) {
      if (median > 0 && rt.busy_ns > options.straggler_factor * median) {
        report.stragglers.push_back(rt.rank);
      }
    }
  }
  return report;
}

TimelineReport analyze(const Tracer& tracer, const TimelineOptions& options) {
  return analyze_events(tracer.snapshot(), options);
}

std::string format_report(const TimelineReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "pipeline timeline: %zu batch(es), measured bubble %.4f "
                "(analytic (p-1)/(v*m) = %.4f), wall-clock bubble %.4f\n",
                report.batches.size(), report.bubble_fraction,
                report.analytic_bubble_fraction, report.wall_bubble_fraction);
  out += line;
  for (const BatchTimeline& b : report.batches) {
    std::snprintf(line, sizeof(line),
                  "  batch %lld (pipe %lld): p=%d m=%d vs=%d makespan %.3f ms "
                  "ideal %.3f ms bubble %.4f critical-path %.3f ms (%zu ops)\n",
                  static_cast<long long>(b.batch),
                  static_cast<long long>(b.pipe), b.p, b.m,
                  b.num_virtual_stages, b.makespan_ns / 1e6, b.ideal_ns / 1e6,
                  b.bubble_fraction, b.critical_path_ns / 1e6,
                  b.critical_path.size());
    out += line;
  }
  for (const RankTimeline& rt : report.ranks) {
    std::snprintf(line, sizeof(line),
                  "  rank %2d: %4d ops busy %.3f ms (wall %.3f ms) recv-wait "
                  "%.3f ms p2p %llu msg / %llu bytes\n",
                  rt.rank, rt.ops, rt.busy_ns / 1e6, rt.wall_busy_ns / 1e6,
                  rt.recv_wait_ns / 1e6,
                  static_cast<unsigned long long>(rt.p2p_messages),
                  static_cast<unsigned long long>(rt.p2p_bytes_sent));
    out += line;
  }
  if (!report.stragglers.empty()) {
    out += "  stragglers:";
    for (int r : report.stragglers) {
      std::snprintf(line, sizeof(line), " %d", r);
      out += line;
    }
    out += "\n";
  }
  return out;
}

}  // namespace ptdp::obs
