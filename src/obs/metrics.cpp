#include "ptdp/obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <unordered_map>

namespace ptdp::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) bounds_ = default_ms_bounds();
  if (buckets_.size() != bounds_.size() + 1) {
    buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    // Bounds must be strictly increasing for the bucket search.
    if (bounds_[i] <= bounds_[i - 1]) bounds_[i] = bounds_[i - 1] * 2.0;
  }
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loops: atomic<double> fetch_add/max are not universally available.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + x,
                                     std::memory_order_relaxed)) {
  }
  double seen_max = max_.load(std::memory_order_relaxed);
  while (x > seen_max &&
         !max_.compare_exchange_weak(seen_max, x, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile_bound(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(n) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      return i < bounds_.size() ? bounds_[i]
                                : std::numeric_limits<double>::infinity();
    }
  }
  return std::numeric_limits<double>::infinity();
}

std::vector<double> default_ms_bounds() {
  std::vector<double> b;
  for (double x = 0.01; x <= 10'000.0; x *= 2.0) b.push_back(x);
  return b;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds.empty() ? default_ms_bounds()
                                                      : std::move(bounds));
  }
  return *slot;
}

// Thread-local (comm_id -> slot) cache: the steady-state comm hot path is a
// hash lookup plus a plain increment on a slot only this thread writes.
// Keyed by (registry epoch, bound rank) so reset() and rank re-binding
// invalidate cleanly.
MetricsRegistry::CommSlot* MetricsRegistry::comm_slot(std::uint64_t comm_id) {
  struct Cache {
    std::uint64_t epoch = ~std::uint64_t{0};
    int rank = -2;
    std::unordered_map<std::uint64_t, std::shared_ptr<CommSlot>> slots;
  };
  thread_local Cache cache;
  const std::uint64_t epoch = comm_epoch_.load(std::memory_order_acquire);
  const int rank = bound_rank();
  if (cache.epoch != epoch || cache.rank != rank) {
    cache.slots.clear();
    cache.epoch = epoch;
    cache.rank = rank;
  }
  if (auto it = cache.slots.find(comm_id); it != cache.slots.end()) {
    return it->second.get();
  }
  std::shared_ptr<CommSlot> slot;
  {
    std::lock_guard lock(mu_);
    auto& s = comm_slots_[{comm_id, rank}];
    if (!s) s = std::make_shared<CommSlot>();
    slot = s;
  }
  CommSlot* raw = slot.get();
  cache.slots.emplace(comm_id, std::move(slot));
  return raw;
}

void MetricsRegistry::on_comm_send(std::uint64_t comm_id, std::size_t bytes,
                                   bool collective) {
  CommSlot* s = comm_slot(comm_id);
  if (collective) {
    s->stats.coll_send_bytes += bytes;
  } else {
    s->stats.p2p_sends += 1;
    s->stats.p2p_send_bytes += bytes;
  }
}

void MetricsRegistry::on_comm_recv(std::uint64_t comm_id, std::size_t bytes,
                                   bool collective) {
  CommSlot* s = comm_slot(comm_id);
  if (collective) {
    s->stats.coll_recv_bytes += bytes;
  } else {
    s->stats.p2p_recvs += 1;
    s->stats.p2p_recv_bytes += bytes;
  }
}

void MetricsRegistry::on_comm_collective(std::uint64_t comm_id) {
  comm_slot(comm_id)->stats.collective_ops += 1;
}

void MetricsRegistry::name_comm_group(std::uint64_t comm_id,
                                      const std::string& name) {
  std::lock_guard lock(mu_);
  comm_names_[comm_id] = name;
}

std::string MetricsRegistry::comm_group_name(std::uint64_t comm_id) const {
  std::lock_guard lock(mu_);
  const auto it = comm_names_.find(comm_id);
  return it != comm_names_.end() ? it->second : std::string();
}

std::vector<CommReportRow> MetricsRegistry::comm_report() const {
  std::lock_guard lock(mu_);
  std::vector<CommReportRow> rows;
  rows.reserve(comm_slots_.size());
  for (const auto& [key, slot] : comm_slots_) {
    CommReportRow row;
    row.comm_id = key.first;
    row.rank = key.second;
    const auto it = comm_names_.find(key.first);
    if (it != comm_names_.end()) {
      row.group = it->second;
    } else {
      char hex[32];
      std::snprintf(hex, sizeof(hex), "comm-%016" PRIx64, key.first);
      row.group = hex;
    }
    row.stats = slot->stats;
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const CommReportRow& a, const CommReportRow& b) {
                     return a.rank != b.rank ? a.rank < b.rank
                                             : a.group < b.group;
                   });
  return rows;
}

CommGroupStats MetricsRegistry::group_total(const std::string& group,
                                            int rank) const {
  CommGroupStats total;
  for (const CommReportRow& row : comm_report()) {
    if (row.rank != rank || row.group != group) continue;
    total.p2p_sends += row.stats.p2p_sends;
    total.p2p_send_bytes += row.stats.p2p_send_bytes;
    total.p2p_recvs += row.stats.p2p_recvs;
    total.p2p_recv_bytes += row.stats.p2p_recv_bytes;
    total.collective_ops += row.stats.collective_ops;
    total.coll_send_bytes += row.stats.coll_send_bytes;
    total.coll_recv_bytes += row.stats.coll_recv_bytes;
  }
  return total;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  comm_epoch_.fetch_add(1, std::memory_order_acq_rel);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  comm_slots_.clear();
  comm_names_.clear();
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::string MetricsRegistry::json() const {
  std::string out = "{\"schema\":\"ptdp-metrics-v1\",\"counters\":{";
  char num[256];  // fits the widest multi-field row (comm volumes)
  {
    std::lock_guard lock(mu_);
    bool first = true;
    for (const auto& [name, c] : counters_) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      append_escaped(out, name);
      std::snprintf(num, sizeof(num), "\":%" PRId64, c->value());
      out += num;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      append_escaped(out, name);
      std::snprintf(num, sizeof(num), "\":%.6g", g->value());
      out += num;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      append_escaped(out, name);
      std::snprintf(num, sizeof(num),
                    "\":{\"count\":%llu,\"mean\":%.6g,\"max\":%.6g,"
                    "\"p50\":%.6g,\"p99\":%.6g}",
                    static_cast<unsigned long long>(h->count()), h->mean(),
                    h->max(), h->quantile_bound(0.5), h->quantile_bound(0.99));
      out += num;
    }
    out += "}";
  }
  out += ",\"comm\":[";
  bool first = true;
  for (const CommReportRow& row : comm_report()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"rank\":";
    std::snprintf(num, sizeof(num), "%d", row.rank);
    out += num;
    out += ",\"group\":\"";
    append_escaped(out, row.group);
    std::snprintf(num, sizeof(num),
                  "\",\"p2p_sends\":%llu,\"p2p_send_bytes\":%llu,"
                  "\"p2p_recvs\":%llu,\"p2p_recv_bytes\":%llu",
                  static_cast<unsigned long long>(row.stats.p2p_sends),
                  static_cast<unsigned long long>(row.stats.p2p_send_bytes),
                  static_cast<unsigned long long>(row.stats.p2p_recvs),
                  static_cast<unsigned long long>(row.stats.p2p_recv_bytes));
    out += num;
    std::snprintf(num, sizeof(num),
                  ",\"collective_ops\":%llu,\"coll_send_bytes\":%llu,"
                  "\"coll_recv_bytes\":%llu}",
                  static_cast<unsigned long long>(row.stats.collective_ops),
                  static_cast<unsigned long long>(row.stats.coll_send_bytes),
                  static_cast<unsigned long long>(row.stats.coll_recv_bytes));
    out += num;
  }
  out += "]}";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string j = json();
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ptdp::obs
