#include "ptdp/model/param.hpp"

#include "ptdp/runtime/check.hpp"

namespace ptdp::model {

std::uint64_t param_stream(const std::string& name) {
  // FNV-1a 64-bit.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

tensor::Tensor init_weight_shard(const std::string& name, std::int64_t rows,
                                 std::int64_t cols, std::int64_t col_begin,
                                 std::int64_t col_end, float stddev,
                                 std::uint64_t seed) {
  PTDP_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= cols)
      << name << " column shard [" << col_begin << ", " << col_end << ") of " << cols;
  // Generate the full tensor so every (p, t, d) layout sees identical
  // effective weights, then take this rank's columns. Init cost is
  // test-scale only, so the O(rows*cols) generation is acceptable.
  Rng rng(seed, param_stream(name));
  tensor::Tensor full = tensor::Tensor::randn({rows, cols}, rng, stddev);
  if (col_begin == 0 && col_end == cols) return full;
  return full.slice(1, col_begin, col_end - col_begin);
}

tensor::Tensor init_weight_row_shard(const std::string& name, std::int64_t rows,
                                     std::int64_t cols, std::int64_t row_begin,
                                     std::int64_t row_end, float stddev,
                                     std::uint64_t seed) {
  PTDP_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= rows)
      << name << " row shard [" << row_begin << ", " << row_end << ") of " << rows;
  Rng rng(seed, param_stream(name));
  tensor::Tensor full = tensor::Tensor::randn({rows, cols}, rng, stddev);
  if (row_begin == 0 && row_end == rows) return full;
  // clone(): a dim-0 slice is a view — the param would otherwise alias
  // (and keep alive) the full rows x cols init tensor.
  return full.slice(0, row_begin, row_end - row_begin).clone();
}

}  // namespace ptdp::model
