#include "ptdp/model/stage.hpp"

#include <algorithm>

#include "ptdp/graph/builder.hpp"
#include "ptdp/graph/passes.hpp"
#include "ptdp/obs/metrics.hpp"

namespace ptdp::model {

using tensor::Tensor;

GptStage::GptStage(const GptConfig& config, const dist::Comm& tp, StageSpec spec)
    : config_(config), spec_(spec) {
  PTDP_CHECK(0 <= spec.layer_begin && spec.layer_begin <= spec.layer_end &&
             spec.layer_end <= config.num_layers)
      << "layer range [" << spec.layer_begin << ", " << spec.layer_end << ")";
  if (spec_.has_embedding) {
    embedding_.emplace(config_, tp);
  }
  layers_.reserve(static_cast<std::size_t>(spec.layer_end - spec.layer_begin));
  for (std::int64_t l = spec.layer_begin; l < spec.layer_end; ++l) {
    layers_.push_back(std::make_unique<TransformerLayer>(config_, l, tp));
  }
  if (spec_.has_head) {
    Param* tied = spec_.has_embedding ? &embedding_->word() : nullptr;
    head_.emplace(config_, tp, tied);
  }
}

StageForward GptStage::forward(const Tensor& input_act, const Microbatch& mb,
                               StageCache& cache) {
  cache.layers.resize(layers_.size());
  Tensor act;
  if (spec_.has_embedding) {
    act = embedding_->forward(mb.tokens, mb.s, mb.b, cache.embedding, mb.tag);
  } else {
    PTDP_CHECK(input_act.defined()) << "non-embedding stage needs an input activation";
    act = input_act;
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    act = layers_[i]->forward(act, cache.layers[i], mb.tag);
  }
  if (spec_.recompute) {
    // Keep only each layer's input (§3.5, checkpoint every layer); the
    // backward pass replays the forward to rebuild intermediate state.
    for (auto& lc : cache.layers) lc.keep_input_only();
  }
  StageForward out;
  if (spec_.has_head) {
    out.loss = head_->forward(act, mb.targets, cache.head, mb.loss_weights);
  } else {
    out.activation = act;
  }
  return out;
}

Tensor GptStage::backward(const Tensor& dy, float loss_scale, StageCache& cache,
                          const Microbatch& mb) {
  PTDP_CHECK_EQ(cache.layers.size(), layers_.size());
  Tensor grad;
  if (spec_.has_head) {
    grad = head_->backward(loss_scale, cache.head);
  } else {
    PTDP_CHECK(dy.defined()) << "non-head stage needs an upstream grad";
    grad = dy;
  }
  for (std::size_t i = layers_.size(); i-- > 0;) {
    // Recompute (§3.5) is a plan transformation: the layer reruns its
    // forward plan from the stashed input before the backward plan, with the
    // same microbatch tag so the counter-based dropout masks replay bitwise.
    grad = spec_.recompute
               ? layers_[i]->backward_recompute(grad, cache.layers[i], mb.tag)
               : layers_[i]->backward(grad, cache.layers[i]);
  }
  if (spec_.has_embedding) {
    embedding_->backward(grad, cache.embedding);
    return Tensor();  // nothing upstream of the first stage
  }
  return grad;
}

ParamRefs GptStage::params() {
  ParamRefs refs;
  if (embedding_) embedding_->collect_params(refs);
  for (auto& layer : layers_) layer->collect_params(refs);
  if (head_) head_->collect_params(refs);
  return refs;
}

void GptStage::zero_grads() {
  for (Param* p : params()) p->zero_grad();
}

tensor::Tensor GptStage::logits(std::span<const std::int32_t> tokens, std::int64_t s,
                                std::int64_t b) {
  PTDP_CHECK(spec_.has_embedding && spec_.has_head)
      << "logits() needs a whole-model stage";
  PTDP_CHECK_EQ(config_.dropout, 0.0f) << "disable dropout for inference";
  EmbeddingCache ecache;
  Tensor act = embedding_->forward(tokens, s, b, ecache, /*mb_tag=*/0);
  for (auto& layer : layers_) {
    LayerCache lcache;
    act = layer->forward(act, lcache, /*mb_tag=*/0);
  }
  return head_->full_logits(act);
}

tensor::Tensor GptStage::decode(std::span<const DecodeSeq> seqs,
                                std::span<const std::int32_t> tokens, KvStore& kv) {
  PTDP_CHECK(spec_.has_embedding && spec_.has_head)
      << "decode() needs a whole-model stage";
  PTDP_CHECK_EQ(spec_.layer_begin, 0);
  PTDP_CHECK_EQ(config_.dropout, 0.0f) << "disable dropout for inference";
  PTDP_CHECK(!seqs.empty());

  std::int64_t rows = 0;
  std::vector<std::int32_t> positions(tokens.size());
  for (const DecodeSeq& seq : seqs) {
    for (std::int64_t i = 0; i < seq.len; ++i) {
      positions[static_cast<std::size_t>(rows + i)] =
          static_cast<std::int32_t>(seq.pos + i);
    }
    rows += seq.len;
  }
  PTDP_CHECK_EQ(rows, static_cast<std::int64_t>(tokens.size()));

  Tensor act = embedding_->forward_at(tokens, positions);  // [rows, h]
  for (auto& layer : layers_) {
    act = layer->forward_decode(act, seqs, kv);
  }

  // Head input: the last new position of each sequence. Row-wise LN and
  // the tied projection make per-row results independent of which rows
  // ride along, so selecting before the head changes no bits.
  const std::int64_t n = static_cast<std::int64_t>(seqs.size());
  const std::int64_t h = config_.hidden;
  Tensor last = Tensor::empty({n, 1, h});
  auto src = act.data();
  auto dst = last.data();
  std::int64_t r0 = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    r0 += seqs[static_cast<std::size_t>(i)].len;
    std::copy_n(src.data() + (r0 - 1) * h, static_cast<std::size_t>(h),
                dst.data() + i * h);
  }
  return head_->full_logits(last);  // [n, V]
}

std::int64_t GptStage::kv_heads_local() const {
  PTDP_CHECK(!layers_.empty());
  return layers_.front()->binding().attn->heads_local();
}

std::int64_t GptStage::kv_head_dim() const {
  PTDP_CHECK(!layers_.empty());
  return layers_.front()->binding().attn->head_dim();
}

void GptStage::set_dropout(float p) {
  config_.dropout = p;
  if (embedding_) embedding_->set_dropout(p);
  for (auto& layer : layers_) layer->set_dropout(p);
}

QuantizeReport GptStage::quantize_for_serving(const graph::QuantPolicy& policy) {
  PTDP_CHECK_EQ(config_.dropout, 0.0f)
      << "quantize_for_serving is inference-only; set_dropout(0) first";
  // The plan decides, the modules follow: build ONE inference layer plan for
  // this config, let the §17 kernel-selection pass rewrite it, then read back
  // which linear slots it chose. Every layer shares the topology, so the one
  // decision applies to all of them.
  graph::PlannerOptions opts;
  opts.inference = true;
  opts.quant = &policy;
  const graph::LayerPlan plan =
      graph::build_layer_plan(config_, /*with_dropout=*/false, opts);
  bool slot_quant[4] = {false, false, false, false};
  for (const graph::Node& n : plan.fwd) {
    if (n.kind == graph::OpKind::kLinearFwdQuant && n.linear >= 0) {
      slot_quant[n.linear] = true;
    }
  }

  QuantizeReport report;
  auto quantize_one = [&](auto* lin) {
    lin->quantize_weight(policy.kind, policy.group_size, policy.drop_f32);
    const quant::QuantizedWeight& qw = lin->quantized_weight();
    report.weight_bytes_f32 += qw.rows * qw.cols * 4;
    report.weight_bytes += qw.quant_bytes();
    ++report.linears;
  };
  for (auto& layer : layers_) {
    const graph::LayerBinding& bind = layer->binding();
    if (slot_quant[static_cast<int>(graph::LinearSlot::kQkv)]) quantize_one(bind.qkv);
    if (slot_quant[static_cast<int>(graph::LinearSlot::kProj)]) quantize_one(bind.proj);
    if (slot_quant[static_cast<int>(graph::LinearSlot::kFc1)]) quantize_one(bind.fc1);
    if (slot_quant[static_cast<int>(graph::LinearSlot::kFc2)]) quantize_one(bind.fc2);
  }

  if (obs::metrics_on()) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("quant.weight_bytes_saved")
        .add(report.weight_bytes_f32 - report.weight_bytes);
    reg.gauge("quant.weight_bytes").set(static_cast<double>(report.weight_bytes));
    reg.gauge("quant.weight_bytes_f32")
        .set(static_cast<double>(report.weight_bytes_f32));
  }
  return report;
}

std::vector<quant::NamedQuant> GptStage::quantized_weights() {
  std::vector<quant::NamedQuant> out;
  auto add = [&](auto* lin) {
    if (lin->quantized()) {
      out.push_back({lin->weight_name(), &lin->quantized_weight()});
    }
  };
  for (auto& layer : layers_) {
    const graph::LayerBinding& bind = layer->binding();
    add(bind.qkv);
    add(bind.proj);
    add(bind.fc1);
    add(bind.fc2);
  }
  return out;
}

Param* GptStage::word_embedding_param() {
  if (embedding_) return &embedding_->word();
  if (head_ && head_->owns_word()) return &head_->word();
  return nullptr;
}

}  // namespace ptdp::model
