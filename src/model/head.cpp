#include "ptdp/model/head.hpp"

#include <cmath>

namespace ptdp::model {

using tensor::Tensor;

GptHead::GptHead(const GptConfig& config, dist::Comm tp, Param* tied_word)
    : config_(config),
      tp_(std::move(tp)),
      ln_gamma_(Param{"final_ln.gamma", Tensor::full({config.hidden}, 1.0f),
                      Tensor({config.hidden}), /*replicated=*/true}),
      ln_beta_(Param{"final_ln.beta", Tensor({config.hidden}),
                     Tensor({config.hidden}), /*replicated=*/true}) {
  const int t = tp_.size();
  PTDP_CHECK_EQ(config.vocab % t, 0);
  vocab_per_rank_ = config.vocab / t;
  vocab_begin_ = tp_.rank() * vocab_per_rank_;
  if (tied_word != nullptr) {
    word_ = tied_word;
  } else {
    // Same name + same shard range => bitwise-identical init to the first
    // stage's embedding; the embedding-group grad all-reduce keeps the two
    // copies in lockstep thereafter.
    own_word_ = Param{"embedding.word",
                      init_weight_row_shard("embedding.word", config.vocab,
                                            config.hidden, vocab_begin_,
                                            vocab_begin_ + vocab_per_rank_,
                                            config.init_stddev, config.seed),
                      Tensor({vocab_per_rank_, config.hidden}),
                      /*replicated=*/false};
    word_ = &*own_word_;
  }
}

float GptHead::forward(const Tensor& x, std::span<const std::int32_t> targets,
                       HeadCache& cache, std::span<const float> loss_weights) {
  PTDP_CHECK_EQ(x.ndim(), 3);
  const std::int64_t s = x.dim(0);
  const std::int64_t b = x.dim(1);
  const std::int64_t h = config_.hidden;
  const std::int64_t n = s * b;
  PTDP_CHECK_EQ(static_cast<std::int64_t>(targets.size()), n);
  cache.input = x;
  cache.s = s;
  cache.b = b;

  Tensor x2d = x.view({n, h});
  cache.ln = tensor::layernorm(x2d, ln_gamma_.value, ln_beta_.value);

  // Column-parallel logits through the tied embedding: [n, V/t]. With bf16
  // tied weights the LN output is narrowed for the product (both GEMM
  // operands at storage precision, f32 accumulate — DESIGN.md §13); the
  // cache keeps the f32 LN output the layernorm backward needs.
  Tensor logits = word_->value.dtype() == tensor::DType::kBf16
                      ? tensor::matmul_nt(
                            cache.ln.y.to(tensor::DType::kBf16), word_->value)
                      : tensor::matmul_nt(cache.ln.y, word_->value);

  // Vocab-parallel cross entropy.
  Tensor rowmax = tensor::row_max(logits);                 // local max
  tp_.all_reduce(rowmax.data(), dist::ReduceOp::kMax);     // global max

  cache.exp_shift = Tensor::empty({n, vocab_per_rank_});
  auto dl = logits.data();
  auto dm = rowmax.data();
  auto de = cache.exp_shift.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float m = dm[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < vocab_per_rank_; ++j) {
      de[static_cast<std::size_t>(i * vocab_per_rank_ + j)] =
          std::exp(dl[static_cast<std::size_t>(i * vocab_per_rank_ + j)] - m);
    }
  }
  Tensor z = tensor::row_sum(cache.exp_shift);
  tp_.all_reduce(z.data());  // global Σexp

  // Target logits: the rank owning each target contributes it; others 0.
  cache.local_targets.assign(static_cast<std::size_t>(n), -1);
  Tensor& target_logit = scratch_.zeros(kTargetLogit, {n});
  auto dt = target_logit.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t tgt = targets[static_cast<std::size_t>(i)];
    PTDP_CHECK(tgt >= 0 && tgt < config_.vocab) << "target " << tgt;
    const std::int64_t local = tgt - vocab_begin_;
    if (local >= 0 && local < vocab_per_rank_) {
      cache.local_targets[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>(local);
      dt[static_cast<std::size_t>(i)] =
          dl[static_cast<std::size_t>(i * vocab_per_rank_ + local)];
    }
  }
  tp_.all_reduce(target_logit.data());

  // Per-row weights: uniform 1/n by default; normalized loss mask for MLM.
  cache.row_weight.assign(static_cast<std::size_t>(n),
                          1.0f / static_cast<float>(n));
  if (!loss_weights.empty()) {
    PTDP_CHECK_EQ(static_cast<std::int64_t>(loss_weights.size()), n);
    double wsum = 0.0;
    for (float w : loss_weights) {
      PTDP_CHECK_GE(w, 0.0f);
      wsum += w;
    }
    PTDP_CHECK_GT(wsum, 0.0) << "loss mask selects no tokens";
    for (std::int64_t i = 0; i < n; ++i) {
      cache.row_weight[static_cast<std::size_t>(i)] =
          static_cast<float>(loss_weights[static_cast<std::size_t>(i)] / wsum);
    }
  }

  cache.inv_z.resize(static_cast<std::size_t>(n));
  auto dz = z.data();
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    cache.inv_z[static_cast<std::size_t>(i)] = 1.0f / dz[static_cast<std::size_t>(i)];
    // log-sum-exp = m + log Z; loss_i = lse − target_logit_i.
    loss += cache.row_weight[static_cast<std::size_t>(i)] *
            (dm[static_cast<std::size_t>(i)] +
             std::log(dz[static_cast<std::size_t>(i)]) -
             dt[static_cast<std::size_t>(i)]);
  }
  return static_cast<float>(loss);
}

Tensor GptHead::backward(float loss_scale, const HeadCache& cache) {
  const std::int64_t s = cache.s;
  const std::int64_t b = cache.b;
  const std::int64_t h = config_.hidden;
  const std::int64_t n = s * b;

  // dlogits[i,j] = (softmax_ij − 1{j == target_i}) * loss_scale * w_i,
  // where w_i is the (normalized) per-token loss weight (1/n by default).
  Tensor& dlogits = scratch_.empty(kDlogits, {n, vocab_per_rank_});
  auto de = cache.exp_shift.data();
  auto dd = dlogits.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float wi = loss_scale * cache.row_weight[static_cast<std::size_t>(i)];
    const float iz = cache.inv_z[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < vocab_per_rank_; ++j) {
      dd[static_cast<std::size_t>(i * vocab_per_rank_ + j)] =
          de[static_cast<std::size_t>(i * vocab_per_rank_ + j)] * iz * wi;
    }
    const std::int32_t local = cache.local_targets[static_cast<std::size_t>(i)];
    if (local >= 0) {
      dd[static_cast<std::size_t>(i * vocab_per_rank_ + local)] -= wi;
    }
  }

  // Tied-weight grad: dW += dlogitsᵀ · LN(x).
  tensor::add_(word_->grad, tensor::matmul_tn(dlogits, cache.ln.y));

  // dLN(x) = dlogits · W, summed over vocab shards (operator f backward).
  Tensor d_lny = tensor::matmul(dlogits, word_->value);
  tp_.all_reduce(d_lny.data());

  Tensor x2d = cache.input.view({n, h});
  auto ln_grads = tensor::layernorm_backward(d_lny, x2d, ln_gamma_.value,
                                             cache.ln.mean, cache.ln.rstd);
  tensor::add_(ln_gamma_.grad, ln_grads.dgamma);
  tensor::add_(ln_beta_.grad, ln_grads.dbeta);
  return ln_grads.dx.view({s, b, h});
}

Tensor GptHead::full_logits(const Tensor& x) {
  PTDP_CHECK_EQ(x.ndim(), 3);
  const std::int64_t n = x.dim(0) * x.dim(1);
  Tensor x2d = x.view({n, config_.hidden});
  auto ln = tensor::layernorm(x2d, ln_gamma_.value, ln_beta_.value);
  Tensor local = tensor::matmul_nt(ln.y, word_->value);  // [n, V/t]
  if (tp_.size() == 1) return local;
  // Gather the vocab shards: ranks contribute column blocks in rank order.
  Tensor& gathered = scratch_.empty(
      kGather, {static_cast<std::int64_t>(tp_.size()), n, vocab_per_rank_});
  tp_.all_gather(std::span<const float>(local.data()), gathered.data());
  return gathered.permute({1, 0, 2}).view({n, config_.vocab});
}

void GptHead::collect_params(ParamRefs& out) {
  out.push_back(&ln_gamma_);
  out.push_back(&ln_beta_);
  if (own_word_) out.push_back(&*own_word_);
}

}  // namespace ptdp::model
