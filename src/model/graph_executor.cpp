#include "ptdp/graph/executor.hpp"

#include <cstring>
#include <limits>

#include "ptdp/model/attention.hpp"
#include "ptdp/model/config.hpp"
#include "ptdp/model/linear.hpp"
#include "ptdp/model/param.hpp"
#include "ptdp/model/rng_sites.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"
#include "ptdp/runtime/check.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::graph {

using tensor::Tensor;

namespace {

model::Param& param(const LayerBinding& bind, std::int8_t slot) {
  PTDP_CHECK(slot >= 0 && slot < kNumParamSlots);
  return *bind.params[static_cast<std::size_t>(slot)];
}

/// Unfused-plan helper: applies the implicit causal mask as an explicit
/// -inf fill so the plain softmax kernel can follow. The fused
/// scale+causal+softmax kernel replaces this pair after the fusion pass; a
/// zero padding mask (the BERT configuration) is a pure copy.
Tensor mask_fill(const Tensor& x, bool causal) {
  Tensor out = Tensor::empty({x.dim(0), x.dim(1), x.dim(2)});
  auto src = x.data();
  auto dst = out.data();
  std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
  if (!causal) return out;
  const std::int64_t sq = x.dim(1), sk = x.dim(2);
  const float ninf = -std::numeric_limits<float>::infinity();
  for (std::int64_t r = 0; r < x.dim(0); ++r) {
    float* slab = dst.data() + r * sq * sk;
    for (std::int64_t i = 0; i < sq; ++i) {
      for (std::int64_t j = i + (sk - sq) + 1; j < sk; ++j) {
        slab[i * sk + j] = ninf;
      }
    }
  }
  return out;
}

struct Runner {
  const LayerPlan& plan;
  Frame& frame;
  const LayerBinding& bind;
  const ExecContext& ctx;

  Tensor& at(ValueId vid) { return frame.vals[static_cast<std::size_t>(vid)]; }

  Rng rng_for(const Node& node) const {
    return model::site_rng(bind.config->seed, ctx.mb_tag,
                           static_cast<std::uint64_t>(bind.layer_idx),
                           node.site);
  }

  void exec(const Node& n) {
    namespace ts = ptdp::tensor;
    switch (n.kind) {
      case OpKind::kView2D: {
        const Tensor& x = at(n.in[0]);
        at(n.out[0]) = x.view({x.dim(0) * x.dim(1), x.dim(2)});
        break;
      }
      case OpKind::kView3D: {
        const Tensor& x = at(n.in[0]);
        at(n.out[0]) = x.view({ctx.s, ctx.b, x.dim(1)});
        break;
      }
      case OpKind::kLayerNorm: {
        auto r = ts::layernorm(at(n.in[0]), param(bind, n.param).value,
                               param(bind, n.param2).value);
        at(n.out[0]) = r.y;
        at(n.out[1]) = r.mean;
        at(n.out[2]) = r.rstd;
        break;
      }
      case OpKind::kLayerNormBwd: {
        model::Param& gamma = param(bind, n.param);
        model::Param& beta = param(bind, n.param2);
        auto g = ts::layernorm_backward(at(n.in[0]), at(n.in[1]), gamma.value,
                                        at(n.in[2]), at(n.in[3]));
        ts::add_(gamma.grad, g.dgamma);
        ts::add_(beta.grad, g.dbeta);
        at(n.out[0]) = g.dx;
        break;
      }
      case OpKind::kLinearFwd:
      case OpKind::kLinearFwdQuant: {
        // Same dispatch: the linear module itself routes to the quantized
        // GEMM when its weight has been quantized (stage.quantize_for_serving
        // applies the plan's kernel selection to the modules).
        model::LinearCache c;
        switch (static_cast<LinearSlot>(n.linear)) {
          case LinearSlot::kQkv: at(n.out[0]) = bind.qkv->forward(at(n.in[0]), c); break;
          case LinearSlot::kProj: at(n.out[0]) = bind.proj->forward(at(n.in[0]), c); break;
          case LinearSlot::kFc1: at(n.out[0]) = bind.fc1->forward(at(n.in[0]), c); break;
          case LinearSlot::kFc2: at(n.out[0]) = bind.fc2->forward(at(n.in[0]), c); break;
        }
        at(n.out[1]) = c.input;
        break;
      }
      case OpKind::kLinearBwd: {
        model::LinearCache c{at(n.in[1])};
        switch (static_cast<LinearSlot>(n.linear)) {
          case LinearSlot::kQkv: at(n.out[0]) = bind.qkv->backward(at(n.in[0]), c); break;
          case LinearSlot::kProj: at(n.out[0]) = bind.proj->backward(at(n.in[0]), c); break;
          case LinearSlot::kFc1: at(n.out[0]) = bind.fc1->backward(at(n.in[0]), c); break;
          case LinearSlot::kFc2: at(n.out[0]) = bind.fc2->backward(at(n.in[0]), c); break;
        }
        break;
      }
      case OpKind::kAttnSplitHeads: {
        const std::int64_t al = bind.attn->heads_local();
        const std::int64_t dk = bind.attn->head_dim();
        Tensor qkv4d = at(n.in[0])
                           .view({ctx.s, ctx.b, al, 3 * dk})
                           .permute({1, 2, 0, 3})
                           .view({ctx.b * al, ctx.s, 3 * dk});
        at(n.out[0]) = qkv4d.slice(-1, 0, dk);
        at(n.out[1]) = qkv4d.slice(-1, dk, dk);
        at(n.out[2]) = qkv4d.slice(-1, 2 * dk, dk);
        break;
      }
      case OpKind::kAttnMergeHeads: {
        const std::int64_t al = bind.attn->heads_local();
        const std::int64_t dk = bind.attn->head_dim();
        at(n.out[0]) = at(n.in[0])
                           .view({ctx.b, al, ctx.s, dk})
                           .permute({2, 0, 1, 3})
                           .view({ctx.s * ctx.b, al * dk});
        break;
      }
      case OpKind::kAttnSplitGradHeads: {
        const std::int64_t al = bind.attn->heads_local();
        const std::int64_t dk = bind.attn->head_dim();
        at(n.out[0]) = at(n.in[0])
                           .view({ctx.s, ctx.b, al, dk})
                           .permute({1, 2, 0, 3})
                           .view({ctx.b * al, ctx.s, dk});
        break;
      }
      case OpKind::kAttnMergeQkvGrad: {
        const std::int64_t al = bind.attn->heads_local();
        const std::int64_t dk = bind.attn->head_dim();
        at(n.out[0]) = ts::concat({at(n.in[0]), at(n.in[1]), at(n.in[2])}, -1)
                           .view({ctx.b, al, ctx.s, 3 * dk})
                           .permute({2, 0, 1, 3})
                           .view({ctx.s * ctx.b, 3 * al * dk});
        break;
      }
      case OpKind::kAttnProbMask:
        at(n.out[0]) = bind.attn->make_prob_dropout_mask(ctx.b, ctx.mb_tag);
        break;
      case OpKind::kAddBias:
        at(n.out[0]) = ts::add_bias(at(n.in[0]), param(bind, n.param).value);
        break;
      case OpKind::kGelu:
        at(n.out[0]) = ts::gelu(at(n.in[0]));
        break;
      case OpKind::kGeluBwd:
        at(n.out[0]) = ts::gelu_backward(at(n.in[0]), at(n.in[1]));
        break;
      case OpKind::kDropout: {
        Rng rng = rng_for(n);
        at(n.out[0]) = ts::dropout(at(n.in[0]), ctx.dropout, rng, at(n.out[1]));
        break;
      }
      case OpKind::kDropoutBwd:
        at(n.out[0]) = ts::dropout_backward(at(n.in[0]), at(n.in[1]));
        break;
      case OpKind::kAdd:
        at(n.out[0]) = ts::add(at(n.in[0]), at(n.in[1]));
        break;
      case OpKind::kMul:
        at(n.out[0]) = ts::mul(at(n.in[0]), at(n.in[1]));
        break;
      case OpKind::kScale:
        at(n.out[0]) = ts::scale(at(n.in[0]), n.scale);
        break;
      case OpKind::kMaskFill:
        at(n.out[0]) = mask_fill(at(n.in[0]), n.causal);
        break;
      case OpKind::kSoftmax:
        at(n.out[0]) = ts::softmax_lastdim(at(n.in[0]));
        break;
      case OpKind::kSoftmaxBwd:
        at(n.out[0]) = ts::softmax_backward(at(n.in[0]), at(n.in[1]));
        break;
      case OpKind::kBmm:
        at(n.out[0]) = ts::bmm(at(n.in[0]), at(n.in[1]));
        break;
      case OpKind::kBmmNT:
        at(n.out[0]) = ts::bmm_nt(at(n.in[0]), at(n.in[1]));
        break;
      case OpKind::kBmmTN:
        at(n.out[0]) = ts::bmm_tn(at(n.in[0]), at(n.in[1]));
        break;
      case OpKind::kBiasGradAccum:
        ts::add_(param(bind, n.param).grad, ts::bias_grad(at(n.in[0])));
        break;
      case OpKind::kFusedBiasGelu:
        at(n.out[0]) =
            ts::fused_bias_gelu(at(n.in[0]), param(bind, n.param).value);
        break;
      case OpKind::kFusedBiasGeluBwd: {
        model::Param& b = param(bind, n.param);
        at(n.out[0]) =
            ts::fused_bias_gelu_backward(at(n.in[0]), at(n.in[1]), b.value, b.grad);
        break;
      }
      case OpKind::kFusedBiasDropoutAdd: {
        Rng rng = rng_for(n);
        Tensor scratch_mask;
        Tensor& mask = n.out.size() > 1 ? at(n.out[1]) : scratch_mask;
        at(n.out[0]) = ts::fused_bias_dropout_add(
            at(n.in[0]), param(bind, n.param).value, at(n.in[1]), ctx.dropout,
            rng, mask);
        break;
      }
      case OpKind::kScaleCausalSoftmax:
        at(n.out[0]) = ts::fused_scale_causal_softmax(at(n.in[0]), n.scale);
        break;
      case OpKind::kScaleMaskSoftmax:
        at(n.out[0]) = ts::fused_scale_mask_softmax(
            at(n.in[0]), Tensor({ctx.s, ctx.s}), n.scale);
        break;
      case OpKind::kScaleSoftmaxBwd:
        at(n.out[0]) = ts::fused_scale_softmax_backward(at(n.in[0]), at(n.in[1]),
                                                        n.scale);
        break;
    }
  }

  /// Executes unified nodes [from, to), releasing each slot at its planned
  /// last use (the buffer plan's arena reuse, realized through the mem pool).
  void run_range(std::size_t from, std::size_t to) {
    for (std::size_t u = from; u < to; ++u) {
      const Node& n = plan.unified(u);
      {
        obs::Span span(op_name(n.kind), obs::Cat::kCompute,
                       {{"layer", bind.layer_idx}});
        exec(n);
      }
      const auto iu = static_cast<std::int32_t>(u);
      auto release_dead = [&](ValueId vid) {
        if (vid == plan.input || vid == plan.output || vid == plan.grad_in ||
            vid == plan.grad_out) {
          return;
        }
        const Value& v = plan.values[static_cast<std::size_t>(vid)];
        if (v.last_use == iu) at(vid) = Tensor();
      };
      for (ValueId vid : n.in) release_dead(vid);
      for (ValueId vid : n.out) release_dead(vid);
    }
    if (obs::metrics_on()) {
      obs::MetricsRegistry::instance()
          .counter("graph.ops_executed")
          .add(static_cast<std::int64_t>(to - from));
    }
  }
};

}  // namespace

Tensor SequentialExecutor::run_forward(const LayerPlan& plan, Frame& frame,
                                       const LayerBinding& bind,
                                       const ExecContext& ctx) {
  PTDP_CHECK(frame.vals.size() == plan.values.size());
  Runner r{plan, frame, bind, ctx};
  r.run_range(0, plan.fwd.size());
  return frame.vals[static_cast<std::size_t>(plan.output)];
}

Tensor SequentialExecutor::run_backward(const LayerPlan& plan, Frame& frame,
                                        const LayerBinding& bind,
                                        const ExecContext& ctx,
                                        const Tensor& dy) {
  PTDP_CHECK(frame.vals.size() == plan.values.size());
  frame.vals[static_cast<std::size_t>(plan.grad_in)] = dy;
  Runner r{plan, frame, bind, ctx};
  r.run_range(plan.fwd.size(), plan.unified_size());
  Tensor dx = frame.vals[static_cast<std::size_t>(plan.grad_out)];
  frame.clear();  // the microbatch is done on this layer
  return dx;
}

Tensor SequentialExecutor::run_recompute(const LayerPlan& plan, Frame& frame,
                                         const LayerBinding& bind,
                                         const ExecContext& ctx,
                                         const Tensor& dy) {
  PTDP_CHECK(frame.vals.size() == plan.values.size());
  PTDP_CHECK(frame.vals[static_cast<std::size_t>(plan.input)].defined());
  frame.vals[static_cast<std::size_t>(plan.grad_in)] = dy;
  Runner r{plan, frame, bind, ctx};
  r.run_range(0, plan.unified_size());
  Tensor dx = frame.vals[static_cast<std::size_t>(plan.grad_out)];
  frame.clear();
  return dx;
}

}  // namespace ptdp::graph
