#include "ptdp/model/kv_cache.hpp"

#include <algorithm>

namespace ptdp::model {

using tensor::Tensor;

void SimpleKvStore::write(std::uint64_t seq, std::int64_t layer, std::int64_t pos,
                          const Tensor& k2d, const Tensor& v2d) {
  PTDP_CHECK_EQ(k2d.ndim(), 2);
  PTDP_CHECK(k2d.same_shape(v2d));
  const std::int64_t c = k2d.dim(0);
  const std::int64_t hl = k2d.dim(1);
  auto& layers = seqs_[seq];
  if (static_cast<std::int64_t>(layers.size()) <= layer) {
    layers.resize(static_cast<std::size_t>(layer + 1));
  }
  LayerRows& lr = layers[static_cast<std::size_t>(layer)];
  PTDP_CHECK_EQ(lr.len, pos) << "KvStore is append-only";
  const std::int64_t need = pos + c;
  const std::int64_t cap = lr.rows.defined() ? lr.rows.dim(0) : 0;
  if (need > cap) {
    std::int64_t new_cap = std::max<std::int64_t>(cap * 2, 8);
    new_cap = std::max(new_cap, need);
    Tensor grown = Tensor::empty({new_cap, 2 * hl});
    if (lr.len > 0) {
      std::copy_n(lr.rows.data().data(),
                  static_cast<std::size_t>(lr.len * 2 * hl), grown.data().data());
    }
    lr.rows = grown;
  }
  auto dst = lr.rows.data();
  auto k = k2d.data();
  auto v = v2d.data();
  for (std::int64_t i = 0; i < c; ++i) {
    float* row = dst.data() + (pos + i) * 2 * hl;
    std::copy_n(k.data() + i * hl, static_cast<std::size_t>(hl), row);
    std::copy_n(v.data() + i * hl, static_cast<std::size_t>(hl), row + hl);
  }
  lr.len = need;
}

void SimpleKvStore::gather(std::uint64_t seq, std::int64_t layer, std::int64_t len,
                           Tensor& k, Tensor& v) const {
  PTDP_CHECK_EQ(k.ndim(), 3);
  PTDP_CHECK(k.same_shape(v));
  const std::int64_t heads = k.dim(0);
  const std::int64_t dk = k.dim(2);
  PTDP_CHECK_EQ(k.dim(1), len);
  auto it = seqs_.find(seq);
  PTDP_CHECK(it != seqs_.end()) << "unknown sequence " << seq;
  const auto& layers = it->second;
  PTDP_CHECK_LT(layer, static_cast<std::int64_t>(layers.size()));
  const LayerRows& lr = layers[static_cast<std::size_t>(layer)];
  PTDP_CHECK_LE(len, lr.len);
  const std::int64_t hl = lr.rows.dim(1) / 2;
  PTDP_CHECK_EQ(heads * dk, hl);
  auto src = lr.rows.data();
  auto dk_out = k.data();
  auto dv_out = v.data();
  for (std::int64_t p = 0; p < len; ++p) {
    const float* row = src.data() + p * 2 * hl;
    for (std::int64_t a = 0; a < heads; ++a) {
      std::copy_n(row + a * dk, static_cast<std::size_t>(dk),
                  dk_out.data() + (a * len + p) * dk);
      std::copy_n(row + hl + a * dk, static_cast<std::size_t>(dk),
                  dv_out.data() + (a * len + p) * dk);
    }
  }
}

void SimpleKvStore::drop(std::uint64_t seq) { seqs_.erase(seq); }

std::int64_t SimpleKvStore::length(std::uint64_t seq, std::int64_t layer) const {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) return 0;
  if (layer >= static_cast<std::int64_t>(it->second.size())) return 0;
  return it->second[static_cast<std::size_t>(layer)].len;
}

}  // namespace ptdp::model
