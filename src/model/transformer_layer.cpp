#include "ptdp/model/transformer_layer.hpp"

#include "ptdp/graph/builder.hpp"

namespace ptdp::model {

using tensor::Tensor;

namespace {
Param layernorm_param(std::int64_t layer, const char* suffix, std::int64_t h,
                      float init) {
  const std::string name = "layer" + std::to_string(layer) + "." + suffix;
  return Param{name, Tensor::full({h}, init), Tensor({h}),
               /*replicated_across_tensor_parallel=*/true};
}
}  // namespace

TransformerLayer::TransformerLayer(const GptConfig& config,
                                   std::int64_t global_layer_idx,
                                   const dist::Comm& tp)
    : config_(config),
      layer_idx_(global_layer_idx),
      ln1_gamma_(layernorm_param(global_layer_idx, "ln1.gamma", config.hidden, 1.0f)),
      ln1_beta_(layernorm_param(global_layer_idx, "ln1.beta", config.hidden, 0.0f)),
      ln2_gamma_(layernorm_param(global_layer_idx, "ln2.gamma", config.hidden, 1.0f)),
      ln2_beta_(layernorm_param(global_layer_idx, "ln2.beta", config.hidden, 0.0f)),
      attention_(config, global_layer_idx, tp),
      mlp_(config, global_layer_idx, tp) {
  graph::PlannerOptions opts;
  opts.tp_size = tp.size();
  plan_nodrop_ = graph::build_layer_plan(config, /*with_dropout=*/false, opts);
  plan_drop_ = graph::build_layer_plan(config, /*with_dropout=*/true, opts);

  binding_.config = &config_;
  binding_.layer_idx = layer_idx_;
  auto slot = [this](graph::ParamSlot s) -> Param*& {
    return binding_.params[static_cast<int>(s)];
  };
  slot(graph::ParamSlot::kLn1Gamma) = &ln1_gamma_;
  slot(graph::ParamSlot::kLn1Beta) = &ln1_beta_;
  slot(graph::ParamSlot::kLn2Gamma) = &ln2_gamma_;
  slot(graph::ParamSlot::kLn2Beta) = &ln2_beta_;
  slot(graph::ParamSlot::kProjBias) = &attention_.proj_bias();
  slot(graph::ParamSlot::kFc1Bias) = &mlp_.fc1().bias();
  slot(graph::ParamSlot::kFc2Bias) = &mlp_.fc2_bias();
  binding_.qkv = &attention_.qkv();
  binding_.proj = &attention_.proj();
  binding_.fc1 = &mlp_.fc1();
  binding_.fc2 = &mlp_.fc2();
  binding_.attn = &attention_;
}

Tensor TransformerLayer::forward(const Tensor& x, LayerCache& cache,
                                 std::uint64_t mb_tag) {
  PTDP_CHECK_EQ(x.ndim(), 3);
  if (!graph::enabled()) return forward_eager(x, cache, mb_tag);

  const graph::LayerPlan& plan = this->plan(config_.dropout > 0.0f);
  cache.input = x;  // recompute + stage replay still key off cache.input
  cache.frame.begin(plan, x);
  graph::ExecContext ctx{x.dim(0), x.dim(1), mb_tag, config_.dropout};
  return graph::SequentialExecutor::run_forward(plan, cache.frame, binding_, ctx);
}

Tensor TransformerLayer::forward_decode(const Tensor& x,
                                        std::span<const DecodeSeq> seqs,
                                        KvStore& kv) {
  PTDP_CHECK_EQ(x.ndim(), 2);
  PTDP_CHECK_EQ(config_.dropout, 0.0f) << "disable dropout for decoding";
  const std::int64_t rows = x.dim(0);
  const std::int64_t h = config_.hidden;

  // Eager block body with p = 0: bias-add then residual-add is the exact
  // elementwise sequence fused_bias_dropout_add performs at p = 0, so the
  // residual stream stays bitwise the training path's.
  auto ln1 = tensor::layernorm(x, ln1_gamma_.value, ln1_beta_.value);
  Tensor attn_out = attention_.forward_decode(ln1.y, seqs, kv);
  Tensor h1 = tensor::add(tensor::add_bias(attn_out, attention_.proj_bias().value), x);

  auto ln2 = tensor::layernorm(h1, ln2_gamma_.value, ln2_beta_.value);
  MlpCache mlp_cache;
  Tensor mlp_out = mlp_.forward(ln2.y.view({rows, 1, h}), mlp_cache).view({rows, h});
  return tensor::add(tensor::add_bias(mlp_out, mlp_.fc2_bias().value), h1);
}

Tensor TransformerLayer::backward(const Tensor& dy, LayerCache& cache) {
  if (!(graph::enabled() && cache.frame.active()))
    return backward_eager(dy, cache);

  const graph::LayerPlan& plan = this->plan(cache.frame.with_dropout);
  graph::ExecContext ctx{dy.dim(0), dy.dim(1), /*mb_tag=*/0, config_.dropout};
  return graph::SequentialExecutor::run_backward(plan, cache.frame, binding_,
                                                 ctx, dy);
}

Tensor TransformerLayer::backward_recompute(const Tensor& dy, LayerCache& cache,
                                            std::uint64_t mb_tag) {
  if (!graph::enabled()) {
    // Eager §3.5 replay: rebuild the cache from the stashed input, then run
    // the normal backward. The counter-based RNG streams make the replay
    // bitwise-identical to the original forward.
    (void)forward_eager(cache.input, cache, mb_tag);
    return backward_eager(dy, cache);
  }

  const graph::LayerPlan& plan = this->plan(cache.frame.with_dropout);
  PTDP_CHECK(cache.frame.active()) << "recompute backward without a frame";
  graph::ExecContext ctx{dy.dim(0), dy.dim(1), mb_tag, config_.dropout};
  return graph::SequentialExecutor::run_recompute(plan, cache.frame, binding_,
                                                  ctx, dy);
}

Tensor TransformerLayer::forward_eager(const Tensor& x, LayerCache& cache,
                                       std::uint64_t mb_tag) {
  const std::int64_t s = x.dim(0);
  const std::int64_t b = x.dim(1);
  const std::int64_t h = config_.hidden;
  cache.input = x;

  Tensor x2d = x.view({s * b, h});
  cache.ln1 = tensor::layernorm(x2d, ln1_gamma_.value, ln1_beta_.value);
  Tensor attn_out =
      attention_.forward(cache.ln1.y.view({s, b, h}), cache.attn, mb_tag);

  // Fused bias+dropout+add: residual is the block input. The dropout mask
  // is keyed by (mb, layer, site) so tensor-parallel ranks agree and
  // recomputation replays it.
  Rng rng1 = site_rng(config_.seed, mb_tag, static_cast<std::uint64_t>(layer_idx_),
                      DropSite::kAttentionResidual);
  cache.h1 = tensor::fused_bias_dropout_add(attn_out.view({s * b, h}),
                                            attention_.proj_bias().value, x2d,
                                            config_.dropout, rng1,
                                            cache.attn_resid_mask);

  cache.ln2 = tensor::layernorm(cache.h1, ln2_gamma_.value, ln2_beta_.value);
  Tensor mlp_out = mlp_.forward(cache.ln2.y.view({s, b, h}), cache.mlp);

  Rng rng2 = site_rng(config_.seed, mb_tag, static_cast<std::uint64_t>(layer_idx_),
                      DropSite::kMlpResidual);
  Tensor mask2;
  Tensor y2d = tensor::fused_bias_dropout_add(mlp_out.view({s * b, h}),
                                              mlp_.fc2_bias().value, cache.h1,
                                              config_.dropout, rng2, mask2);
  cache.mlp_resid_mask = mask2;
  return y2d.view({s, b, h});
}

Tensor TransformerLayer::backward_eager(const Tensor& dy, const LayerCache& cache) {
  const std::int64_t s = dy.dim(0);
  const std::int64_t b = dy.dim(1);
  const std::int64_t h = config_.hidden;
  Tensor dy2d = dy.view({s * b, h});

  // ---- second residual: y = dropout(mlp_out + fc2_bias) + h1 ----
  Tensor d_after2 = tensor::dropout_backward(dy2d, cache.mlp_resid_mask);
  tensor::add_(mlp_.fc2_bias().grad, tensor::bias_grad(d_after2));
  Tensor d_ln2y = mlp_.backward(d_after2.view({s, b, h}), cache.mlp).view({s * b, h});

  auto ln2_grads = tensor::layernorm_backward(d_ln2y, cache.h1, ln2_gamma_.value,
                                              cache.ln2.mean, cache.ln2.rstd);
  tensor::add_(ln2_gamma_.grad, ln2_grads.dgamma);
  tensor::add_(ln2_beta_.grad, ln2_grads.dbeta);

  // dh1 = residual path (dy) + LayerNorm path.
  Tensor dh1 = tensor::add(dy2d, ln2_grads.dx);

  // ---- first residual: h1 = dropout(attn_out + proj_bias) + x ----
  Tensor d_after1 = tensor::dropout_backward(dh1, cache.attn_resid_mask);
  tensor::add_(attention_.proj_bias().grad, tensor::bias_grad(d_after1));
  Tensor d_ln1y =
      attention_.backward(d_after1.view({s, b, h}), cache.attn).view({s * b, h});

  Tensor x2d = cache.input.view({s * b, h});
  auto ln1_grads = tensor::layernorm_backward(d_ln1y, x2d, ln1_gamma_.value,
                                              cache.ln1.mean, cache.ln1.rstd);
  tensor::add_(ln1_gamma_.grad, ln1_grads.dgamma);
  tensor::add_(ln1_beta_.grad, ln1_grads.dbeta);

  Tensor dx = tensor::add(dh1, ln1_grads.dx);
  return dx.view({s, b, h});
}

void TransformerLayer::set_dropout(float p) {
  config_.dropout = p;
  attention_.set_dropout(p);
}

void TransformerLayer::collect_params(ParamRefs& out) {
  out.push_back(&ln1_gamma_);
  out.push_back(&ln1_beta_);
  attention_.collect_params(out);
  out.push_back(&ln2_gamma_);
  out.push_back(&ln2_beta_);
  mlp_.collect_params(out);
}

}  // namespace ptdp::model
