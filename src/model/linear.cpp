#include "ptdp/model/linear.hpp"

#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {

using tensor::Tensor;

namespace {

// Mixed-precision GEMM input rule (DESIGN.md §13): when the layer stores
// bf16 weights, the activation operand is narrowed to bf16 as well, so the
// product runs both operands at storage precision (and hits the native
// bf16 kernel where the CPU has one) while accumulation and the returned
// activations stay f32. The narrowed copy is what the cache keeps, halving
// cached-activation bytes. f32 layers pass through untouched.
Tensor gemm_input(const Tensor& x, const Tensor& weight) {
  if (weight.dtype() == tensor::DType::kBf16 &&
      x.dtype() == tensor::DType::kF32) {
    return x.to(tensor::DType::kBf16);
  }
  return x;
}

// Quantize-once at serving load: repack the (widened-to-f32) weight shard,
// optionally dropping the master storage. Shared by both layer flavors.
void quantize_param(Param& weight, quant::QuantizedWeight& qweight,
                    tensor::QuantKind kind, std::int64_t group_size,
                    bool drop_f32) {
  Tensor w = weight.value.dtype() == tensor::DType::kF32
                 ? weight.value
                 : weight.value.to(tensor::DType::kF32);
  qweight = quant::quantize(
      w, kind, quant::effective_group_size(group_size, w.dim(0)));
  if (drop_f32) {
    weight.value = Tensor();
    weight.grad = Tensor();
  }
}

}  // namespace

ColumnParallelLinear::ColumnParallelLinear(std::string name, std::int64_t in,
                                           std::int64_t out, dist::Comm tp,
                                           float stddev, std::uint64_t seed,
                                           bool skip_bias_add, tensor::DType dtype)
    : name_(std::move(name)), tp_(std::move(tp)), in_(in), out_(out),
      skip_bias_add_(skip_bias_add) {
  const int t = tp_.size();
  PTDP_CHECK_EQ(out_ % t, 0) << name_ << ": out=" << out_ << " not divisible by t=" << t;
  out_per_rank_ = out_ / t;
  const std::int64_t c0 = tp_.rank() * out_per_rank_;
  const std::int64_t c1 = c0 + out_per_rank_;
  weight_ = Param{name_ + ".weight",
                  init_weight_shard(name_ + ".weight", in_, out_, c0, c1, stddev, seed)
                      .to(dtype),
                  Tensor({in_, out_per_rank_}), /*replicated=*/false};
  // Biases init to zero (standard GPT practice); still keyed by shard range.
  bias_ = Param{name_ + ".bias", Tensor({out_per_rank_}), Tensor({out_per_rank_}),
                /*replicated=*/false};
}

Tensor ColumnParallelLinear::forward(const Tensor& x, LinearCache& cache) {
  PTDP_CHECK_EQ(x.dim(-1), in_) << name_;
  if (quantized()) {
    PTDP_CHECK(x.dtype() == tensor::DType::kF32) << name_;
    cache.input = x;
    Tensor y = quant::matmul(x, qweight_);
    if (!skip_bias_add_) y = tensor::add_bias(y, bias_.value);
    return y;
  }
  cache.input = gemm_input(x, weight_.value);  // f32: shares storage; cheap
  Tensor y = tensor::matmul(cache.input, weight_.value);
  if (!skip_bias_add_) y = tensor::add_bias(y, bias_.value);
  return y;
}

Tensor ColumnParallelLinear::backward(const Tensor& dy, const LinearCache& cache) {
  PTDP_CHECK(!quantized()) << name_ << ": quantized weights have no gradient";
  PTDP_CHECK_EQ(dy.dim(-1), out_per_rank_) << name_;
  // dW += xᵀ·dy ; dbias += colsum(dy) unless a fused kernel owns it.
  tensor::add_(weight_.grad, tensor::matmul_tn(cache.input, dy));
  if (!skip_bias_add_) tensor::add_(bias_.grad, tensor::bias_grad(dy));
  // dx = dy·Wᵀ, then operator f backward: all-reduce over tensor ranks.
  Tensor dx = tensor::matmul_nt(dy, weight_.value);
  tp_.all_reduce(dx.data());
  return dx;
}

void ColumnParallelLinear::collect_params(ParamRefs& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

void ColumnParallelLinear::quantize_weight(tensor::QuantKind kind,
                                           std::int64_t group_size,
                                           bool drop_f32) {
  quantize_param(weight_, qweight_, kind, group_size, drop_f32);
}

RowParallelLinear::RowParallelLinear(std::string name, std::int64_t in,
                                     std::int64_t out, dist::Comm tp, float stddev,
                                     std::uint64_t seed, bool skip_bias_add,
                                     tensor::DType dtype)
    : name_(std::move(name)), tp_(std::move(tp)), in_(in), out_(out),
      skip_bias_add_(skip_bias_add) {
  const int t = tp_.size();
  PTDP_CHECK_EQ(in_ % t, 0) << name_ << ": in=" << in_ << " not divisible by t=" << t;
  in_per_rank_ = in_ / t;
  const std::int64_t r0 = tp_.rank() * in_per_rank_;
  const std::int64_t r1 = r0 + in_per_rank_;
  weight_ = Param{
      name_ + ".weight",
      init_weight_row_shard(name_ + ".weight", in_, out_, r0, r1, stddev, seed)
          .to(dtype),
      Tensor({in_per_rank_, out_}), /*replicated=*/false};
  bias_ = Param{name_ + ".bias", Tensor({out_}), Tensor({out_}),
                /*replicated=*/true};
}

Tensor RowParallelLinear::forward(const Tensor& x, LinearCache& cache) {
  PTDP_CHECK_EQ(x.dim(-1), in_per_rank_) << name_;
  if (quantized()) {
    PTDP_CHECK(x.dtype() == tensor::DType::kF32) << name_;
    cache.input = x;
    Tensor y = quant::matmul(x, qweight_);
    // Operator g forward still applies: partial products across tensor ranks.
    tp_.all_reduce(y.data());
    if (!skip_bias_add_) y = tensor::add_bias(y, bias_.value);
    return y;
  }
  cache.input = gemm_input(x, weight_.value);
  Tensor y = tensor::matmul(cache.input, weight_.value);
  // Operator g forward: sum partial products across tensor ranks.
  tp_.all_reduce(y.data());
  if (!skip_bias_add_) y = tensor::add_bias(y, bias_.value);
  return y;
}

Tensor RowParallelLinear::backward(const Tensor& dy, const LinearCache& cache) {
  PTDP_CHECK(!quantized()) << name_ << ": quantized weights have no gradient";
  PTDP_CHECK_EQ(dy.dim(-1), out_) << name_;
  tensor::add_(weight_.grad, tensor::matmul_tn(cache.input, dy));
  if (!skip_bias_add_) tensor::add_(bias_.grad, tensor::bias_grad(dy));
  // Operator g backward: identity (dy is replicated; each rank extracts the
  // slice of dx its weight rows produce).
  return tensor::matmul_nt(dy, weight_.value);
}

void RowParallelLinear::collect_params(ParamRefs& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

void RowParallelLinear::quantize_weight(tensor::QuantKind kind,
                                        std::int64_t group_size,
                                        bool drop_f32) {
  quantize_param(weight_, qweight_, kind, group_size, drop_f32);
}

}  // namespace ptdp::model
