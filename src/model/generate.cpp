#include "ptdp/model/generate.hpp"

#include <algorithm>
#include <cmath>

#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {

using tensor::Tensor;

Tensor forward_logits(GptStage& stage, std::span<const std::int32_t> tokens,
                      std::int64_t s, std::int64_t b) {
  PTDP_CHECK(stage.spec().has_embedding && stage.spec().has_head)
      << "forward_logits needs the whole model on one stage";
  PTDP_CHECK_EQ(stage.config().dropout, 0.0f)
      << "build the inference model with dropout = 0";
  return stage.logits(tokens, s, b);
}

std::vector<std::int32_t> generate(GptStage& stage,
                                   std::span<const std::int32_t> prompt,
                                   const GenerateOptions& options) {
  PTDP_CHECK(!prompt.empty()) << "prompt must contain at least one token";
  const std::int64_t window = stage.config().seq;
  const std::int64_t vocab = stage.config().vocab;
  std::vector<std::int32_t> out(prompt.begin(), prompt.end());
  Rng rng(options.seed, substream(0x9E4EA7E));

  for (std::int64_t step = 0; step < options.max_new_tokens; ++step) {
    const std::int64_t ctx_len =
        std::min<std::int64_t>(window, static_cast<std::int64_t>(out.size()));
    std::span<const std::int32_t> ctx(out.data() + out.size() - ctx_len,
                                      static_cast<std::size_t>(ctx_len));
    const Tensor logits = forward_logits(stage, ctx, ctx_len, /*b=*/1);
    // Last position's distribution.
    auto row = logits.data().subspan(
        static_cast<std::size_t>((ctx_len - 1) * vocab),
        static_cast<std::size_t>(vocab));

    std::int32_t next;
    if (options.greedy) {
      next = static_cast<std::int32_t>(
          std::max_element(row.begin(), row.end()) - row.begin());
    } else {
      PTDP_CHECK_GT(options.temperature, 0.0f);
      // Temperature softmax + inverse-CDF sample.
      const float mx = *std::max_element(row.begin(), row.end());
      std::vector<double> probs(static_cast<std::size_t>(vocab));
      double z = 0.0;
      for (std::int64_t v = 0; v < vocab; ++v) {
        probs[static_cast<std::size_t>(v)] = std::exp(
            (row[static_cast<std::size_t>(v)] - mx) / options.temperature);
        z += probs[static_cast<std::size_t>(v)];
      }
      double u = rng.next_uniform() * z;
      next = static_cast<std::int32_t>(vocab - 1);
      for (std::int64_t v = 0; v < vocab; ++v) {
        u -= probs[static_cast<std::size_t>(v)];
        if (u <= 0.0) {
          next = static_cast<std::int32_t>(v);
          break;
        }
      }
    }
    out.push_back(next);
  }
  return out;
}

}  // namespace ptdp::model
