#include "ptdp/model/generate.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {

using tensor::Tensor;

Tensor forward_logits(GptStage& stage, std::span<const std::int32_t> tokens,
                      std::int64_t s, std::int64_t b) {
  PTDP_CHECK(stage.spec().has_embedding && stage.spec().has_head)
      << "forward_logits needs the whole model on one stage";
  PTDP_CHECK_EQ(stage.config().dropout, 0.0f)
      << "build the inference model with dropout = 0";
  return stage.logits(tokens, s, b);
}

std::int32_t sample_token(std::span<const float> logits_row,
                          const GenerateOptions& options, Rng& rng) {
  const std::int64_t vocab = static_cast<std::int64_t>(logits_row.size());
  PTDP_CHECK_GT(vocab, 0);
  if (options.greedy) {
    return static_cast<std::int32_t>(
        std::max_element(logits_row.begin(), logits_row.end()) -
        logits_row.begin());
  }
  PTDP_CHECK_GT(options.temperature, 0.0f);

  // Top-k restriction: keep the k highest logits, breaking ties at the
  // k-th value toward lower token ids so the kept set is deterministic.
  std::vector<char> allowed(static_cast<std::size_t>(vocab), 1);
  if (options.top_k > 0 && options.top_k < vocab) {
    std::vector<float> vals(logits_row.begin(), logits_row.end());
    std::nth_element(vals.begin(), vals.begin() + (options.top_k - 1), vals.end(),
                     std::greater<float>());
    const float thr = vals[static_cast<std::size_t>(options.top_k - 1)];
    std::fill(allowed.begin(), allowed.end(), 0);
    std::int64_t taken = 0;
    for (std::int64_t v = 0; v < vocab; ++v) {
      if (logits_row[static_cast<std::size_t>(v)] > thr) {
        allowed[static_cast<std::size_t>(v)] = 1;
        ++taken;
      }
    }
    for (std::int64_t v = 0; v < vocab && taken < options.top_k; ++v) {
      if (!allowed[static_cast<std::size_t>(v)] &&
          logits_row[static_cast<std::size_t>(v)] == thr) {
        allowed[static_cast<std::size_t>(v)] = 1;
        ++taken;
      }
    }
  }

  // Temperature softmax over the kept set + inverse-CDF sample.
  float mx = -std::numeric_limits<float>::infinity();
  for (std::int64_t v = 0; v < vocab; ++v) {
    if (allowed[static_cast<std::size_t>(v)]) {
      mx = std::max(mx, logits_row[static_cast<std::size_t>(v)]);
    }
  }
  std::vector<double> probs(static_cast<std::size_t>(vocab), 0.0);
  double z = 0.0;
  for (std::int64_t v = 0; v < vocab; ++v) {
    if (!allowed[static_cast<std::size_t>(v)]) continue;
    probs[static_cast<std::size_t>(v)] = std::exp(
        (logits_row[static_cast<std::size_t>(v)] - mx) / options.temperature);
    z += probs[static_cast<std::size_t>(v)];
  }
  double u = rng.next_uniform() * z;
  std::int32_t last_allowed = 0;
  for (std::int64_t v = 0; v < vocab; ++v) {
    if (!allowed[static_cast<std::size_t>(v)]) continue;
    last_allowed = static_cast<std::int32_t>(v);
    u -= probs[static_cast<std::size_t>(v)];
    if (u <= 0.0) return static_cast<std::int32_t>(v);
  }
  return last_allowed;  // rounding left u > 0: the last kept token
}

std::vector<std::int32_t> generate(GptStage& stage,
                                   std::span<const std::int32_t> prompt,
                                   const GenerateOptions& options) {
  PTDP_CHECK(!prompt.empty()) << "prompt must contain at least one token";
  const std::int64_t window = stage.config().seq;
  const std::int64_t vocab = stage.config().vocab;
  std::vector<std::int32_t> out(prompt.begin(), prompt.end());
  Rng rng(options.seed, substream(0x9E4EA7E));

  SimpleKvStore kv;
  std::int64_t cached = 0;  // positions materialized in the KV store

  for (std::int64_t step = 0; step < options.max_new_tokens; ++step) {
    const std::int64_t total = static_cast<std::int64_t>(out.size());
    std::span<const float> row;
    Tensor logits;
    if (options.use_kv_cache && total <= window) {
      // Incremental: feed only the not-yet-cached suffix (the whole prompt
      // on the first step, the single new token afterwards).
      const DecodeSeq seq{/*id=*/0, cached, total - cached};
      std::span<const std::int32_t> fresh(out.data() + cached,
                                          static_cast<std::size_t>(total - cached));
      logits = stage.decode(std::span<const DecodeSeq>(&seq, 1), fresh, kv);
      row = logits.data().subspan(0, static_cast<std::size_t>(vocab));
      cached = total;
    } else {
      // Full forward: the reference oracle, and the fallback once the
      // context slides past the trained window (cached positions would no
      // longer match the truncated context).
      const std::int64_t ctx_len = std::min<std::int64_t>(window, total);
      std::span<const std::int32_t> ctx(out.data() + total - ctx_len,
                                        static_cast<std::size_t>(ctx_len));
      logits = forward_logits(stage, ctx, ctx_len, /*b=*/1);
      row = logits.data().subspan(static_cast<std::size_t>((ctx_len - 1) * vocab),
                                  static_cast<std::size_t>(vocab));
    }
    out.push_back(sample_token(row, options, rng));
  }
  return out;
}

}  // namespace ptdp::model
