#include "ptdp/model/mlp.hpp"

#include <cmath>

#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {

using tensor::Tensor;

ParallelMlp::ParallelMlp(const GptConfig& config, std::int64_t global_layer_idx,
                         dist::Comm tp)
    : hidden_(config.hidden),
      fc1_("layer" + std::to_string(global_layer_idx) + ".mlp.fc1", config.hidden,
           config.ffn_hidden(), tp, config.init_stddev, config.seed,
           /*skip_bias_add=*/true, config.dtype),
      fc2_("layer" + std::to_string(global_layer_idx) + ".mlp.fc2",
           config.ffn_hidden(), config.hidden, std::move(tp),
           config.init_stddev /
               std::sqrt(2.0f * static_cast<float>(config.num_layers)),
           config.seed, /*skip_bias_add=*/true, config.dtype) {}

Tensor ParallelMlp::forward(const Tensor& x, MlpCache& cache) {
  const std::int64_t s = x.dim(0);
  const std::int64_t b = x.dim(1);
  Tensor x2d = x.view({s * b, hidden_});
  cache.fc1_out = fc1_.forward(x2d, cache.fc1);  // [sb, 4h/t], no bias yet
  Tensor act = tensor::fused_bias_gelu(cache.fc1_out, fc1_.bias().value);
  Tensor y2d = fc2_.forward(act, cache.fc2);  // [sb, h], all-reduced, no bias
  return y2d.view({s, b, hidden_});
}

Tensor ParallelMlp::backward(const Tensor& dy, const MlpCache& cache) {
  const std::int64_t s = dy.dim(0);
  const std::int64_t b = dy.dim(1);
  Tensor dy2d = dy.view({s * b, hidden_});
  Tensor dact = fc2_.backward(dy2d, cache.fc2);  // [sb, 4h/t]
  Tensor dfc1_out = tensor::fused_bias_gelu_backward(dact, cache.fc1_out,
                                                     fc1_.bias().value,
                                                     fc1_.bias().grad);
  Tensor dx2d = fc1_.backward(dfc1_out, cache.fc1);  // all-reduced over t
  return dx2d.view({s, b, hidden_});
}

void ParallelMlp::collect_params(ParamRefs& out) {
  fc1_.collect_params(out);
  fc2_.collect_params(out);
}

}  // namespace ptdp::model
