#include "ptdp/model/attention.hpp"

#include <algorithm>
#include <cmath>

#include "ptdp/runtime/parallel_for.hpp"
#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {

using tensor::Tensor;

namespace {
std::string layer_name(std::int64_t layer, const char* suffix) {
  return "layer" + std::to_string(layer) + ".attn." + suffix;
}
}  // namespace

ParallelAttention::ParallelAttention(const GptConfig& config,
                                     std::int64_t global_layer_idx, dist::Comm tp)
    : config_(config),
      layer_idx_(global_layer_idx),
      qkv_(layer_name(global_layer_idx, "qkv"), config.hidden, 3 * config.hidden, tp,
           config.init_stddev, config.seed, /*skip_bias_add=*/false, config.dtype),
      proj_(layer_name(global_layer_idx, "proj"), config.hidden, config.hidden, tp,
            // Scaled init for residual-path projections (Megatron convention).
            config.init_stddev /
                std::sqrt(2.0f * static_cast<float>(config.num_layers)),
            config.seed, /*skip_bias_add=*/true, config.dtype) {
  const int t = tp.size();
  PTDP_CHECK_EQ(config.heads % t, 0)
      << "attention heads (" << config.heads << ") must divide by tensor size " << t;
  PTDP_CHECK_EQ(config.hidden % config.heads, 0);
  heads_local_ = config.heads / t;
  head_dim_ = config.hidden / config.heads;
  hidden_local_ = heads_local_ * head_dim_;
  head_begin_ = heads_local_ * tp.rank();
}

Tensor ParallelAttention::make_prob_dropout_mask(std::int64_t b,
                                                 std::uint64_t mb_tag) const {
  const std::int64_t s = config_.seq;
  Tensor mask = Tensor::empty({b * heads_local_, s, s});
  const float p = config_.dropout;
  const float keep_scale = 1.0f / (1.0f - p);
  auto dm = mask.data();
  // Each (batch, head) slab draws from its own site-keyed RNG stream, so the
  // slabs can be filled by the intra-op pool in any order without changing a
  // single draw.
  const std::int64_t grain =
      std::max<std::int64_t>(1, (1 << 15) / std::max<std::int64_t>(s * s, 1));
  runtime::parallel_for(
      0, b * heads_local_, grain, [&](std::int64_t u0, std::int64_t u1) {
        for (std::int64_t u = u0; u < u1; ++u) {
          const std::int64_t bi = u / heads_local_;
          const std::int64_t lh = u % heads_local_;
          // Keyed by the *global* head index so tensor-parallel ranks draw the
          // same mask the serial model draws for this head.
          const std::int64_t gh = head_begin_ + lh;
          Rng rng = site_rng(config_.seed, mb_tag,
                             static_cast<std::uint64_t>(layer_idx_),
                             DropSite::kAttentionProb,
                             static_cast<std::uint64_t>(bi * config_.heads + gh));
          float* slab = dm.data() + u * s * s;
          for (std::int64_t i = 0; i < s * s; ++i) {
            slab[i] = rng.next_bernoulli(p) ? 0.0f : keep_scale;
          }
        }
      });
  return mask;
}

Tensor ParallelAttention::forward(const Tensor& x, AttentionCache& cache,
                                  std::uint64_t mb_tag) {
  PTDP_CHECK_EQ(x.ndim(), 3) << "attention input must be [s, b, h]";
  const std::int64_t s = x.dim(0);
  const std::int64_t b = x.dim(1);
  PTDP_CHECK_EQ(x.dim(2), config_.hidden);
  cache.s = s;
  cache.b = b;

  Tensor x2d = x.view({s * b, config_.hidden});
  Tensor qkv2d = qkv_.forward(x2d, cache.qkv);  // [sb, 3*hidden_local]

  // [s, b, a_l, 3dk] -> [b, a_l, s, 3dk] -> [b*a_l, s, 3dk]
  Tensor qkv4d = qkv2d.view({s, b, heads_local_, 3 * head_dim_})
                     .permute({1, 2, 0, 3})
                     .view({b * heads_local_, s, 3 * head_dim_});
  cache.q = qkv4d.slice(-1, 0, head_dim_);
  cache.k = qkv4d.slice(-1, head_dim_, head_dim_);
  cache.v = qkv4d.slice(-1, 2 * head_dim_, head_dim_);

  Tensor scores = tensor::bmm_nt(cache.q, cache.k);  // [ba, s, s]
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  if (config_.causal) {
    cache.probs = tensor::fused_scale_causal_softmax(scores, scale);
  } else {
    // BERT-style bidirectional attention through the general-mask kernel
    // (nothing masked here; padding masks would plug in the same way).
    cache.probs = tensor::fused_scale_mask_softmax(scores, Tensor({s, s}), scale);
  }

  if (config_.dropout > 0.0f) {
    cache.prob_mask = make_prob_dropout_mask(b, mb_tag);
    cache.probs_dropped = tensor::mul(cache.probs, cache.prob_mask);
  } else {
    cache.probs_dropped = cache.probs;
  }

  Tensor ctx = tensor::bmm(cache.probs_dropped, cache.v);  // [ba, s, dk]
  Tensor ctx2d = ctx.view({b, heads_local_, s, head_dim_})
                     .permute({2, 0, 1, 3})
                     .view({s * b, hidden_local_});
  Tensor out2d = proj_.forward(ctx2d, cache.proj);  // [sb, h], bias skipped
  return out2d.view({s, b, config_.hidden});
}

Tensor ParallelAttention::forward_decode(const Tensor& x,
                                         std::span<const DecodeSeq> seqs,
                                         KvStore& kv) {
  PTDP_CHECK_EQ(x.ndim(), 2) << "decode input must be [rows, h]";
  PTDP_CHECK_EQ(x.dim(1), config_.hidden);
  PTDP_CHECK(config_.causal) << "incremental decode is causal-only";
  PTDP_CHECK_EQ(config_.dropout, 0.0f) << "disable dropout for decoding";
  const std::int64_t rows = x.dim(0);
  const std::int64_t dk = head_dim_;

  LinearCache qkv_cache;
  Tensor qkv2d = qkv_.forward(x, qkv_cache);  // [rows, 3*hidden_local]
  auto qkv = qkv2d.data();

  Tensor ctx2d = Tensor::empty({rows, hidden_local_});
  auto ctx_out = ctx2d.data();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));

  std::int64_t r0 = 0;
  for (const DecodeSeq& seq : seqs) {
    const std::int64_t c = seq.len;
    const std::int64_t kv_len = seq.pos + c;
    PTDP_CHECK_GT(c, 0);

    // Per-row qkv layout is [a_l, 3dk] (q | k | v per head): split the new
    // rows into the store's head-major K/V rows and the batched-GEMM query.
    Tensor k2d = Tensor::empty({c, hidden_local_});
    Tensor v2d = Tensor::empty({c, hidden_local_});
    Tensor q3d = Tensor::empty({heads_local_, c, dk});
    auto kd = k2d.data();
    auto vd = v2d.data();
    auto qd = q3d.data();
    for (std::int64_t i = 0; i < c; ++i) {
      const float* src = qkv.data() + (r0 + i) * 3 * hidden_local_;
      for (std::int64_t a = 0; a < heads_local_; ++a) {
        std::copy_n(src + a * 3 * dk, static_cast<std::size_t>(dk),
                    qd.data() + (a * c + i) * dk);
        std::copy_n(src + a * 3 * dk + dk, static_cast<std::size_t>(dk),
                    kd.data() + i * hidden_local_ + a * dk);
        std::copy_n(src + a * 3 * dk + 2 * dk, static_cast<std::size_t>(dk),
                    vd.data() + i * hidden_local_ + a * dk);
      }
    }
    kv.write(seq.id, layer_idx_, seq.pos, k2d, v2d);

    // Contiguous prefix+chunk K/V, then the exact full-path kernel sequence
    // on [a_l, c, kv_len] — bitwise the full forward's last c rows.
    Tensor kc = Tensor::empty({heads_local_, kv_len, dk});
    Tensor vc = Tensor::empty({heads_local_, kv_len, dk});
    kv.gather(seq.id, layer_idx_, kv_len, kc, vc);
    Tensor scores = tensor::bmm_nt(q3d, kc);  // [a_l, c, kv_len]
    Tensor probs = tensor::fused_scale_causal_softmax(scores, scale);
    Tensor ctx = tensor::bmm(probs, vc);  // [a_l, c, dk]
    auto cd = ctx.data();
    for (std::int64_t i = 0; i < c; ++i) {
      float* dst = ctx_out.data() + (r0 + i) * hidden_local_;
      for (std::int64_t a = 0; a < heads_local_; ++a) {
        std::copy_n(cd.data() + (a * c + i) * dk, static_cast<std::size_t>(dk),
                    dst + a * dk);
      }
    }
    r0 += c;
  }
  PTDP_CHECK_EQ(r0, rows) << "decode batch rows must equal the sum of seq lens";

  LinearCache proj_cache;
  return proj_.forward(ctx2d, proj_cache);  // [rows, h], bias skipped
}

Tensor ParallelAttention::backward(const Tensor& dy, const AttentionCache& cache) {
  const std::int64_t s = cache.s;
  const std::int64_t b = cache.b;
  Tensor dy2d = dy.view({s * b, config_.hidden});

  Tensor dctx2d = proj_.backward(dy2d, cache.proj);  // [sb, hidden_local]
  Tensor dctx = dctx2d.view({s, b, heads_local_, head_dim_})
                    .permute({1, 2, 0, 3})
                    .view({b * heads_local_, s, head_dim_});

  // ctx = P·V
  Tensor dp_dropped = tensor::bmm_nt(dctx, cache.v);          // [ba, s, s]
  Tensor dv = tensor::bmm_tn(cache.probs_dropped, dctx);      // [ba, s, dk]
  Tensor dprobs = config_.dropout > 0.0f
                      ? tensor::mul(dp_dropped, cache.prob_mask)
                      : dp_dropped;

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor dscores = tensor::fused_scale_softmax_backward(cache.probs, dprobs, scale);

  // scores = Q·Kᵀ
  Tensor dq = tensor::bmm(dscores, cache.k);     // [ba, s, dk]
  Tensor dk = tensor::bmm_tn(dscores, cache.q);  // [ba, s, dk]

  Tensor dqkv = tensor::concat({dq, dk, dv}, -1)  // [ba, s, 3dk]
                    .view({b, heads_local_, s, 3 * head_dim_})
                    .permute({2, 0, 1, 3})
                    .view({s * b, 3 * hidden_local_});
  Tensor dx2d = qkv_.backward(dqkv, cache.qkv);  // all-reduced over t
  return dx2d.view({s, b, config_.hidden});
}

void ParallelAttention::collect_params(ParamRefs& out) {
  qkv_.collect_params(out);
  proj_.collect_params(out);
}

}  // namespace ptdp::model
