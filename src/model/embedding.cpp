#include "ptdp/model/embedding.hpp"

#include <algorithm>

#include "ptdp/tensor/ops.hpp"

namespace ptdp::model {

using tensor::Tensor;

VocabParallelEmbedding::VocabParallelEmbedding(const GptConfig& config, dist::Comm tp)
    : config_(config), tp_(std::move(tp)) {
  const int t = tp_.size();
  PTDP_CHECK_EQ(config.vocab % t, 0)
      << "vocab " << config.vocab << " must divide by tensor size " << t;
  vocab_per_rank_ = config.vocab / t;
  vocab_begin_ = tp_.rank() * vocab_per_rank_;
  word_ = Param{"embedding.word",
                init_weight_row_shard("embedding.word", config.vocab, config.hidden,
                                      vocab_begin_, vocab_begin_ + vocab_per_rank_,
                                      config.init_stddev, config.seed),
                Tensor({vocab_per_rank_, config.hidden}), /*replicated=*/false};
  {
    Rng rng(config.seed, param_stream("embedding.pos"));
    position_ = Param{"embedding.pos",
                      Tensor::randn({config.seq, config.hidden}, rng,
                                    config.init_stddev),
                      Tensor({config.seq, config.hidden}), /*replicated=*/true};
  }
}

Tensor VocabParallelEmbedding::forward(std::span<const std::int32_t> tokens,
                                       std::int64_t s, std::int64_t b,
                                       EmbeddingCache& cache, std::uint64_t mb_tag) {
  PTDP_CHECK_EQ(static_cast<std::int64_t>(tokens.size()), s * b);
  PTDP_CHECK_LE(s, config_.seq) << "sequence longer than position table";
  cache.tokens.assign(tokens.begin(), tokens.end());
  cache.s = s;
  cache.b = b;
  const std::int64_t h = config_.hidden;

  // The lookup output escapes as the stage activation (the pipeline owns
  // it until backward), so it is a real pooled allocation — deliberately
  // not TensorArena scratch, unlike the head's per-call transients.
  Tensor out({s * b, h});
  auto dw = word_.value.data();
  auto dout = out.data();
  for (std::int64_t i = 0; i < s * b; ++i) {
    const std::int32_t id = tokens[static_cast<std::size_t>(i)];
    PTDP_CHECK(id >= 0 && id < config_.vocab) << "token id " << id;
    const std::int64_t local = id - vocab_begin_;
    if (local >= 0 && local < vocab_per_rank_) {
      std::copy_n(dw.data() + local * h, h, dout.data() + i * h);
    }
  }
  // Operator g: sum the partial lookups across vocab shards.
  tp_.all_reduce(out.data());

  // Position embeddings: row i_s added to every batch column.
  auto dp = position_.value.data();
  for (std::int64_t is = 0; is < s; ++is) {
    const float* prow = dp.data() + is * h;
    for (std::int64_t ib = 0; ib < b; ++ib) {
      float* row = dout.data() + (is * b + ib) * h;
      for (std::int64_t j = 0; j < h; ++j) row[j] += prow[j];
    }
  }

  if (config_.dropout > 0.0f) {
    Rng rng = site_rng(config_.seed, mb_tag, /*layer=*/0, DropSite::kEmbedding);
    out = tensor::dropout(out, config_.dropout, rng, cache.drop_mask);
  }
  return out.view({s, b, h});
}

Tensor VocabParallelEmbedding::forward_at(std::span<const std::int32_t> tokens,
                                          std::span<const std::int32_t> positions) {
  PTDP_CHECK_EQ(tokens.size(), positions.size());
  PTDP_CHECK_EQ(config_.dropout, 0.0f) << "disable dropout for decoding";
  const std::int64_t n = static_cast<std::int64_t>(tokens.size());
  const std::int64_t h = config_.hidden;

  // Same shard lookup + all-reduce + position add as forward(), with the
  // position row chosen per token instead of by row index.
  Tensor out({n, h});
  auto dw = word_.value.data();
  auto dout = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t id = tokens[static_cast<std::size_t>(i)];
    PTDP_CHECK(id >= 0 && id < config_.vocab) << "token id " << id;
    const std::int64_t local = id - vocab_begin_;
    if (local >= 0 && local < vocab_per_rank_) {
      std::copy_n(dw.data() + local * h, h, dout.data() + i * h);
    }
  }
  tp_.all_reduce(out.data());

  auto dp = position_.value.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t pos = positions[static_cast<std::size_t>(i)];
    PTDP_CHECK(pos >= 0 && pos < config_.seq)
        << "position " << pos << " outside the trained window";
    const float* prow = dp.data() + pos * h;
    float* row = dout.data() + i * h;
    for (std::int64_t j = 0; j < h; ++j) row[j] += prow[j];
  }
  return out;
}

void VocabParallelEmbedding::backward(const Tensor& dy, const EmbeddingCache& cache) {
  const std::int64_t s = cache.s;
  const std::int64_t b = cache.b;
  const std::int64_t h = config_.hidden;
  Tensor d2d = dy.view({s * b, h});
  if (config_.dropout > 0.0f) {
    d2d = tensor::dropout_backward(d2d, cache.drop_mask);
  }

  // Position grads (identical on every tensor rank — replicated param).
  auto dd = d2d.data();
  auto dpg = position_.grad.data();
  for (std::int64_t is = 0; is < s; ++is) {
    float* prow = dpg.data() + is * h;
    for (std::int64_t ib = 0; ib < b; ++ib) {
      const float* row = dd.data() + (is * b + ib) * h;
      for (std::int64_t j = 0; j < h; ++j) prow[j] += row[j];
    }
  }

  // Word grads: scatter-add rows this shard owns. No communication — each
  // rank contributed exactly its own rows in the forward lookup.
  auto dwg = word_.grad.data();
  for (std::int64_t i = 0; i < s * b; ++i) {
    const std::int64_t local = cache.tokens[static_cast<std::size_t>(i)] - vocab_begin_;
    if (local >= 0 && local < vocab_per_rank_) {
      const float* src = dd.data() + i * h;
      float* dst = dwg.data() + local * h;
      for (std::int64_t j = 0; j < h; ++j) dst[j] += src[j];
    }
  }
}

void VocabParallelEmbedding::collect_params(ParamRefs& out) {
  out.push_back(&word_);
  out.push_back(&position_);
}

}  // namespace ptdp::model
