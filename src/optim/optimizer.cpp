#include "ptdp/optim/optimizer.hpp"

#include <cmath>

#include "ptdp/tensor/ops.hpp"

namespace ptdp::optim {

using model::Param;
using tensor::Tensor;

Sgd::Sgd(model::ParamRefs params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  if (options_.momentum != 0.0f) {
    velocity_.reserve(params_.size());
    for (Param* p : params_) velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto w = p.value.data();
    auto g = p.grad.data();
    if (options_.momentum != 0.0f) {
      auto vel = velocity_[i].data();
      for (std::size_t j = 0; j < w.size(); ++j) {
        float grad = g[j] + options_.weight_decay * w[j];
        vel[j] = options_.momentum * vel[j] + grad;
        w[j] -= options_.lr * vel[j];
      }
    } else {
      for (std::size_t j = 0; j < w.size(); ++j) {
        w[j] -= options_.lr * (g[j] + options_.weight_decay * w[j]);
      }
    }
  }
}

NamedState Sgd::state_tensors() {
  NamedState state;
  for (std::size_t i = 0; i < velocity_.size(); ++i) {
    state.emplace_back(params_[i]->name + ".sgd_velocity", &velocity_[i]);
  }
  return state;
}

Adam::Adam(model::ParamRefs params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  const double t = static_cast<double>(step_count_.at({0}) += 1.0f);
  const double bc1 = 1.0 - std::pow(options_.beta1, t);
  const double bc2 = 1.0 - std::pow(options_.beta2, t);
  const float lr_t = options_.lr * static_cast<float>(std::sqrt(bc2) / bc1);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto w = p.value.data();
    auto g = p.grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < w.size(); ++j) {
      const float grad = g[j] + options_.weight_decay * w[j];
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * grad;
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * grad * grad;
      w[j] -= lr_t * m[j] / (std::sqrt(v[j]) + options_.eps);
    }
  }
}

NamedState Adam::state_tensors() {
  NamedState state;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    state.emplace_back(params_[i]->name + ".adam_m", &m_[i]);
    state.emplace_back(params_[i]->name + ".adam_v", &v_[i]);
  }
  state.emplace_back("adam.step_count", &step_count_);
  return state;
}

double global_grad_norm(const model::ParamRefs& params, const dist::Comm* tp,
                        const dist::Comm* pp) {
  double local = 0.0;
  for (const Param* p : params) {
    // Replicated grads (LayerNorms, row-parallel biases, position
    // embeddings) are identical on every tensor rank; count them once.
    if (p->replicated_across_tensor_parallel && tp != nullptr && tp->rank() != 0) {
      continue;
    }
    local += tensor::squared_norm(p->grad);
  }
  if (tp != nullptr) local = tp->all_reduce_scalar(static_cast<float>(local));
  if (pp != nullptr) local = pp->all_reduce_scalar(static_cast<float>(local));
  return std::sqrt(local);
}

double clip_grad_norm(const model::ParamRefs& params, double max_norm,
                      const dist::Comm* tp, const dist::Comm* pp) {
  const double norm = global_grad_norm(params, tp, pp);
  if (norm > max_norm && norm > 0.0) {
    const float factor = static_cast<float>(max_norm / norm);
    for (Param* p : params) tensor::scale_(p->grad, factor);
  }
  return norm;
}

}  // namespace ptdp::optim
