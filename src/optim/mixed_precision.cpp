#include "ptdp/optim/mixed_precision.hpp"

#include <cmath>
#include <cstring>

namespace ptdp::optim {

using tensor::Tensor;

float bf16_round(float v) {
  // Round-trip through the storage conversion so emulation-mode numerics
  // are bit-identical to real bf16 storage.
  return tensor::bf16_to_f32(tensor::f32_to_bf16(v));
}

void truncate_to_bf16(Tensor& t) {
  for (float& v : t.data()) v = bf16_round(v);
}

DynamicLossScaler::DynamicLossScaler(LossScalerOptions options)
    : options_(options), scale_(options.initial_scale) {}

bool DynamicLossScaler::update(bool found_overflow) {
  if (found_overflow) {
    scale_ = std::max(options_.min_scale, scale_ * options_.backoff_factor);
    good_steps_ = 0;
    return false;
  }
  if (++good_steps_ >= options_.growth_interval) {
    scale_ = std::min(options_.max_scale, scale_ * options_.growth_factor);
    good_steps_ = 0;
  }
  return true;
}

bool grads_have_overflow(const model::ParamRefs& params) {
  for (const model::Param* p : params) {
    for (float v : p->grad.data()) {
      if (!std::isfinite(v)) return true;
    }
  }
  return false;
}

MixedPrecisionOptimizer::MixedPrecisionOptimizer(std::unique_ptr<Optimizer> inner,
                                                 LossScalerOptions scaler_options)
    : inner_(std::move(inner)), scaler_(scaler_options) {
  master_.reserve(inner_->params().size());
  working_.reserve(inner_->params().size());
  for (model::Param* p : inner_->params()) {
    if (p->value.dtype() == tensor::DType::kBf16) {
      // Real bf16 storage: master is a widened fp32 copy; the working
      // tensor is the model's own bf16 value (shared storage).
      master_.push_back(p->value.to(tensor::DType::kF32));
      working_.push_back(p->value);
    } else {
      master_.push_back(p->value.clone());  // fp32 master copy
      truncate_to_bf16(p->value);           // working weights are bf16-valued
      working_.push_back(Tensor{});         // undefined marks emulation mode
    }
  }
}

void MixedPrecisionOptimizer::step() {
  const auto& params = inner_->params();
  const bool overflow = grads_have_overflow(params);
  // Grads were scaled by the CURRENT scale; capture it before update()
  // possibly grows it, or growth steps would unscale by the wrong factor.
  const float inv_scale = 1.0f / scaler_.scale();
  const bool apply = scaler_.update(overflow);
  if (!apply) {
    ++skipped_;
    return;
  }
  // Unscale grads, step on the master weights, round back the working set.
  for (model::Param* p : params) {
    for (float& g : p->grad.data()) g *= inv_scale;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (working_[i].defined()) {
      params[i]->value = master_[i];  // swap fp32 master in (shares storage)
    } else {
      params[i]->value.copy_from(master_[i]);
    }
  }
  inner_->step();  // updates the masters in full precision
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (working_[i].defined()) {
      tensor::cast_into(master_[i], working_[i]);  // round master -> bf16
      params[i]->value = working_[i];              // restore the bf16 tensor
    } else {
      master_[i].copy_from(params[i]->value);
      truncate_to_bf16(params[i]->value);
    }
  }
}

NamedState MixedPrecisionOptimizer::state_tensors() {
  NamedState state = inner_->state_tensors();
  const auto& params = inner_->params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    state.emplace_back(params[i]->name + ".fp32_master", &master_[i]);
  }
  return state;
}

}  // namespace ptdp::optim
