#include "ptdp/optim/mixed_precision.hpp"

#include <cmath>
#include <cstring>

namespace ptdp::optim {

using tensor::Tensor;

float bf16_round(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  // Round-to-nearest-even on the truncated 16 mantissa bits.
  const std::uint32_t rounding = 0x7FFFu + ((bits >> 16) & 1u);
  bits = (bits + rounding) & 0xFFFF0000u;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

void truncate_to_bf16(Tensor& t) {
  for (float& v : t.data()) v = bf16_round(v);
}

DynamicLossScaler::DynamicLossScaler(LossScalerOptions options)
    : options_(options), scale_(options.initial_scale) {}

bool DynamicLossScaler::update(bool found_overflow) {
  if (found_overflow) {
    scale_ = std::max(options_.min_scale, scale_ * options_.backoff_factor);
    good_steps_ = 0;
    return false;
  }
  if (++good_steps_ >= options_.growth_interval) {
    scale_ = std::min(options_.max_scale, scale_ * options_.growth_factor);
    good_steps_ = 0;
  }
  return true;
}

bool grads_have_overflow(const model::ParamRefs& params) {
  for (const model::Param* p : params) {
    for (float v : p->grad.data()) {
      if (!std::isfinite(v)) return true;
    }
  }
  return false;
}

MixedPrecisionOptimizer::MixedPrecisionOptimizer(std::unique_ptr<Optimizer> inner,
                                                 LossScalerOptions scaler_options)
    : inner_(std::move(inner)), scaler_(scaler_options) {
  master_.reserve(inner_->params().size());
  for (model::Param* p : inner_->params()) {
    master_.push_back(p->value.clone());  // fp32 master copy
    truncate_to_bf16(p->value);           // working weights are bf16-valued
  }
}

void MixedPrecisionOptimizer::step() {
  const auto& params = inner_->params();
  const bool overflow = grads_have_overflow(params);
  const bool apply = scaler_.update(overflow);
  if (!apply) {
    ++skipped_;
    return;
  }
  // Unscale grads, step on the master weights, re-truncate the working set.
  const float inv_scale = 1.0f / scaler_.scale();
  for (model::Param* p : params) {
    for (float& g : p->grad.data()) g *= inv_scale;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value.copy_from(master_[i]);
  }
  inner_->step();
  for (std::size_t i = 0; i < params.size(); ++i) {
    master_[i].copy_from(params[i]->value);
    truncate_to_bf16(params[i]->value);
  }
}

NamedState MixedPrecisionOptimizer::state_tensors() {
  NamedState state = inner_->state_tensors();
  const auto& params = inner_->params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    state.emplace_back(params[i]->name + ".fp32_master", &master_[i]);
  }
  return state;
}

}  // namespace ptdp::optim
