#include "ptdp/core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ptdp::core {

namespace {

bool divides(std::int64_t a, std::int64_t b) { return b % a == 0; }

}  // namespace

ThroughputModel analytic_throughput_model(double peak_flops, double nvlink_bw,
                                          double ib_bw, int gpus_per_node) {
  return [=](const model::GptConfig& m, const ParallelConfig& cfg,
             std::int64_t B) -> double {
    // Compute time for one microbatch's fwd+bwd on one device, with a
    // microbatch-size-dependent GEMM efficiency (saturating in b — the
    // arithmetic-intensity effect of Fig. 7).
    const double layers_per_device = static_cast<double>(m.num_layers) / cfg.p;
    const double fwd_flops =
        layer_forward_flops(m, cfg.b) * layers_per_device / cfg.t;
    const double eff = 0.55 * (static_cast<double>(cfg.b) * m.seq / cfg.t) /
                       (static_cast<double>(cfg.b) * m.seq / cfg.t + 2048.0);
    const double tf = fwd_flops / (peak_flops * std::max(eff, 0.02));
    const double tb = 2.0 * tf;  // backward ≈ 2× forward

    // Eq. (1) compute time, then bubble-corrected via the interleave factor.
    const double m_count = static_cast<double>(cfg.microbatches(B));
    const double compute =
        (m_count + static_cast<double>(cfg.p - 1) / cfg.v) * (tf + tb);

    // Tensor-parallel all-reduce per microbatch (NVLink inside a node,
    // InfiniBand if t spans nodes — Takeaway #1 falls out here).
    const double tp_bw = cfg.t <= gpus_per_node ? nvlink_bw : ib_bw;
    const double tp_time =
        m_count * tensor_parallel_bytes_per_microbatch(m, cfg) / tp_bw;

    // Pipeline p2p per batch over IB (per boundary, fwd+bwd).
    const double p2p_time =
        cfg.p > 1 ? 2.0 * pipeline_p2p_bytes_per_batch(m, cfg, B) / ib_bw : 0.0;

    // Data-parallel grad all-reduce once per batch over IB.
    const double dp_time = data_parallel_bytes_per_batch(m, cfg) / ib_bw;

    return compute + tp_time + p2p_time + dp_time;
  };
}

Plan plan_configuration(const PlannerInput& input, const ThroughputModel& model) {
  const model::GptConfig& m = input.model;
  PTDP_CHECK_GT(input.n_gpus, 0);
  Plan plan;

  for (int t = 1; t <= std::min<std::int64_t>(input.gpus_per_node, input.n_gpus);
       t *= 2) {
    if (!divides(t, m.heads) || !divides(t, m.vocab) || !divides(t, input.n_gpus)) {
      continue;
    }
    const std::int64_t rest = input.n_gpus / t;
    // All divisors of rest — Table 1's 530B row needs p = 35, so pipeline
    // sizes are not restricted to powers of two.
    for (std::int64_t p = 1; p <= rest; ++p) {
      if (!divides(p, rest)) continue;
      const std::int64_t d = rest / p;
      for (std::int64_t b : input.microbatch_candidates) {
        if (!divides(b * d, input.global_batch)) continue;
        const std::int64_t mcount = input.global_batch / (b * d);
        std::vector<int> vs{1};
        if (input.allow_interleaving && p >= 2) {
          for (int v = 2; v <= input.max_interleave; ++v) {
            if (divides(static_cast<std::int64_t>(p), mcount)) vs.push_back(v);
          }
        }
        for (int v : vs) {
          if (!divides(p * v, m.num_layers)) continue;
          ParallelConfig cfg;
          cfg.p = static_cast<int>(p);
          cfg.t = t;
          cfg.d = static_cast<int>(d);
          cfg.b = b;
          cfg.v = v;
          cfg.schedule = v > 1 ? pipeline::ScheduleType::kInterleaved
                               : pipeline::ScheduleType::kOneFOneB;
          cfg.scatter_gather = v > 1 && t > 1;
          cfg.recompute = true;
          Candidate cand;
          cand.config = cfg;
          cand.memory = memory_per_gpu(m, cfg, input.global_batch);
          if (!cand.memory.fits(input.gpu_memory_bytes)) continue;
          cand.est_batch_seconds = model(m, cfg, input.global_batch);
          plan.feasible.push_back(cand);
        }
      }
    }
  }

  PTDP_CHECK(!plan.feasible.empty())
      << "no (p,t,d,b) configuration fits the model in "
      << input.gpu_memory_bytes / 1e9 << " GB per GPU on " << input.n_gpus << " GPUs";

  std::stable_sort(plan.feasible.begin(), plan.feasible.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.est_batch_seconds < b.est_batch_seconds;
                   });
  plan.best = plan.feasible.front();

  std::ostringstream os;
  os << "chose " << plan.best.config.str() << ": est "
     << plan.best.est_batch_seconds << " s/batch, "
     << plan.best.memory.total() / 1e9 << " GB/GPU of "
     << input.gpu_memory_bytes / 1e9 << " GB; " << plan.feasible.size()
     << " feasible configurations considered";
  plan.rationale = os.str();
  return plan;
}

}  // namespace ptdp::core
