#include "ptdp/core/engine.hpp"

#include <cstring>
#include <filesystem>

#include "ptdp/ckpt/manifest.hpp"
#include "ptdp/core/analytics.hpp"
#include "ptdp/dist/world.hpp"
#include "ptdp/mem/pool.hpp"
#include "ptdp/obs/metrics.hpp"
#include "ptdp/obs/trace.hpp"
#include "ptdp/runtime/stopwatch.hpp"

#include "ptdp/tensor/ops.hpp"
#include "ptdp/zero/sharded_optimizer.hpp"

namespace ptdp::core {

using model::GptStage;
using model::Param;
using model::StageSpec;
using pipeline::virtual_stage;

PtdpEngine::PtdpEngine(dist::Comm& world, EngineOptions options)
    : options_(std::move(options)) {
  const ParallelConfig& cfg = options_.parallel;
  cfg.validate(options_.model, options_.global_batch);
  PTDP_CHECK_EQ(world.size(), cfg.n())
      << "world size " << world.size() << " != p*t*d for " << cfg.str();

  if (options_.model.dtype == tensor::DType::kBf16) {
    // bf16 weights only exist behind fp32 masters: the plain optimizers
    // write f32 values, so the mixed-precision wrapper's master-swap step
    // path is mandatory (and ZeRO's sharded state doesn't carry masters).
    PTDP_CHECK(options_.optimizer != EngineOptions::Opt::kZeroAdam)
        << "ZeRO-sharded Adam does not support bf16 weights";
    options_.mixed_precision = true;
  }

  groups_ = std::make_unique<dist::ProcessGroups>(world, cfg.p, cfg.t, cfg.d);

  // Build this rank's v chunks: chunk c is virtual stage c*p + rank with
  // layers striped in virtual-stage order (§2.2.2).
  const int rank = groups_->coord().pipeline;
  const int P = cfg.p * cfg.v;
  const std::int64_t per_stage = options_.model.num_layers / P;
  for (int c = 0; c < cfg.v; ++c) {
    const int vs = virtual_stage(rank, c, cfg.p);
    StageSpec spec;
    spec.has_embedding = vs == 0;
    spec.has_head = vs == P - 1;
    spec.layer_begin = vs * per_stage;
    spec.layer_end = (vs + 1) * per_stage;
    spec.recompute = cfg.recompute;
    chunks_.push_back(std::make_unique<GptStage>(options_.model, groups_->tensor(),
                                                 spec));
  }

  // Flatten the param walk once; every later consumer (grad reduce, clip,
  // checkpoint, optimizer construction) reuses this list.
  for (auto& c : chunks_) {
    model::ParamRefs r = c->params();
    params_.insert(params_.end(), r.begin(), r.end());
  }

  std::vector<GptStage*> raw;
  raw.reserve(chunks_.size());
  for (auto& c : chunks_) raw.push_back(c.get());
  pipeline::ExecutorOptions exec_opts;
  exec_opts.scatter_gather = cfg.scatter_gather;
  // bf16 models transmit bf16 stage boundaries: activations feeding bf16
  // GEMMs lose nothing extra, and p2p volume halves (DESIGN.md §13).
  exec_opts.boundary_dtype = options_.model.dtype;
  executor_ = std::make_unique<pipeline::PipelineExecutor>(
      raw, groups_->pipeline(), groups_->tensor(),
      cfg.schedule_params(options_.global_batch), exec_opts);

  // Data-parallel reduction plane. The ZeRO optimizer owns its reduction
  // (reduce-scatter inside step()), so it opts out here.
  if (cfg.d > 1 && options_.optimizer != EngineOptions::Opt::kZeroAdam) {
    std::vector<model::ParamRefs> chunk_params;
    std::vector<bool> defer;
    for (auto& c : chunks_) {
      chunk_params.push_back(c->params());
      // Tied-embedding chunks reduce only after the embedding-group sync.
      defer.push_back(cfg.p > 1 && c->word_embedding_param() != nullptr);
    }
    comm::GradReducerOptions reducer_opts;
    reducer_opts.bucket_elems = options_.dp_bucket_elems;
    reducer_opts.overlap = options_.overlap_grad_reduce;
    reducer_opts.comm_dtype = options_.grad_comm_dtype;
    grad_reducer_ = std::make_unique<comm::GradReducer>(
        std::move(chunk_params), groups_->data(), reducer_opts, std::move(defer));
    executor_->set_chunk_backward_hook(
        [this](int chunk) { grad_reducer_->on_chunk_grads_ready(chunk); });
  }

  std::unique_ptr<optim::Optimizer> inner;
  if (options_.optimizer == EngineOptions::Opt::kZeroAdam) {
    PTDP_CHECK(!options_.mixed_precision && options_.grad_clip == 0.0)
        << "ZeRO-sharded Adam does not compose with mixed precision or "
           "clipping in this engine";
    inner = std::make_unique<zero::ZeroShardedAdam>(
        params(), groups_->data(), zero::ZeroAdamOptions{options_.adam});
  } else if (options_.optimizer == EngineOptions::Opt::kSgd) {
    inner = std::make_unique<optim::Sgd>(params(), options_.sgd);
  } else {
    inner = std::make_unique<optim::Adam>(params(), options_.adam);
  }
  if (options_.mixed_precision) {
    auto mixed = std::make_unique<optim::MixedPrecisionOptimizer>(std::move(inner),
                                                                  options_.scaler);
    mixed_ = mixed.get();
    optimizer_ = std::move(mixed);
  } else {
    optimizer_ = std::move(inner);
  }
  if (options_.lr_schedule) lr_schedule_.emplace(*options_.lr_schedule);
}

float PtdpEngine::train_step(std::span<const model::Microbatch> microbatches) {
  const Stopwatch stopwatch;
  // Comm-wait snapshot: the delta over this step splits wall time into
  // busy vs blocked-on-peers — the health monitor's straggler signal
  // (DESIGN.md §15). Thread-local, so per-rank by construction.
  const std::int64_t comm_wait_before = dist::comm_wait_ns();
  // Memory-plane snapshot: train_step runs on this rank's thread and
  // tensors are freed where they were allocated, so the thread-local
  // counters give byte-exact per-rank accounting. Resetting the peak here
  // makes peak_memory_bytes the high-water mark *within* this step.
  mem::reset_thread_peak();
  const mem::PoolStats mem_before = mem::thread_stats();
  obs::Span step_span("train_step", obs::Cat::kEngine, {{"step", step_counter_}});
  // Progress marker for failure reporting: if this rank dies mid-step, the
  // World stamps this value into the RankFailure it rethrows.
  dist::note_step(static_cast<std::uint64_t>(step_counter_));
  const ParallelConfig& cfg = options_.parallel;
  if (lr_schedule_) optimizer_->set_lr(lr_schedule_->at(step_counter_));
  for (auto& c : chunks_) c->zero_grads();

  const float extra_scale = mixed_ != nullptr ? mixed_->scaler().scale() : 1.0f;
  float loss = executor_->run_batch(microbatches, extra_scale);

  // Tied-embedding grad sync: the first and last stages each hold a copy of
  // the word-embedding matrix and accumulate partial grads; their sum is
  // the true grad (this is what the embedding group exists for).
  if (cfg.p > 1 && groups_->in_embedding_group()) {
    obs::Span span("embedding_sync", obs::Cat::kEngine);
    for (auto& c : chunks_) {
      if (Param* w = c->word_embedding_param()) {
        groups_->embedding().all_reduce(w->grad.data());
      }
    }
  }

  // Data-parallel gradient reduction (mean over replicas). With overlap on,
  // most chunks were already reduced from the executor's backward hooks;
  // finish() covers the rest — notably the deferred tied-embedding chunks,
  // whose grads only became final in the embedding-group sync above.
  if (grad_reducer_) {
    obs::Span span("grad_reduce_finish", obs::Cat::kEngine);
    grad_reducer_->finish();
  }

  // Broadcast the loss: only the last pipeline stage computed it.
  if (cfg.p > 1) {
    loss = groups_->pipeline().all_reduce_scalar(loss);  // one non-zero term
  }
  if (cfg.d > 1) {
    loss = groups_->data().all_reduce_scalar(loss) / static_cast<float>(cfg.d);
  }

  if (options_.grad_clip > 0.0) {
    // With mixed precision the grads carry the loss scale; clipping to
    // scale*max_norm applies the same multiplier unscaled clipping would.
    const double max_norm = options_.grad_clip * extra_scale;
    const dist::Comm* tp = cfg.t > 1 ? &groups_->tensor() : nullptr;
    const dist::Comm* pp = cfg.p > 1 ? &groups_->pipeline() : nullptr;
    last_grad_norm_ = optim::clip_grad_norm(params_, max_norm, tp, pp) / extra_scale;
  }

  {
    obs::Span span("optimizer_step", obs::Cat::kEngine);
    optimizer_->step();
  }

  stats_.step = step_counter_++;
  stats_.loss = loss;
  stats_.grad_norm = last_grad_norm_;
  stats_.lr = optimizer_->lr();
  stats_.step_seconds = stopwatch.elapsed_seconds();
  stats_.comm_wait_seconds =
      static_cast<double>(dist::comm_wait_ns() - comm_wait_before) * 1e-9;
  stats_.busy_seconds =
      std::max(0.0, stats_.step_seconds - stats_.comm_wait_seconds);
  stats_.tokens = options_.global_batch * options_.model.seq;
  stats_.tokens_per_second =
      stats_.step_seconds > 0 ? stats_.tokens / stats_.step_seconds : 0.0;
  // Achieved throughput against the paper's Eq. 3 analytic FLOP count.
  stats_.model_flops = flops_per_iteration(options_.model, options_.global_batch);
  stats_.achieved_flops_per_second =
      stats_.step_seconds > 0 ? stats_.model_flops / stats_.step_seconds : 0.0;
  stats_.achieved_flops_per_rank =
      stats_.achieved_flops_per_second / static_cast<double>(cfg.n());
  stats_.grad_reduce_overlap =
      grad_reducer_ ? grad_reducer_->overlap_ratio() : 0.0;
  stats_.loss_scale = mixed_ != nullptr ? mixed_->scaler().scale() : 1.0f;
  stats_.overflow_steps = mixed_ != nullptr ? mixed_->skipped_steps() : 0;
  const mem::PoolStats mem_after = mem::thread_stats();
  stats_.peak_memory_bytes = mem_after.peak_bytes;
  stats_.mem_acquires = mem_after.acquires - mem_before.acquires;
  stats_.mem_heap_allocs = mem_after.heap_allocs - mem_before.heap_allocs;
  const std::uint64_t step_hits = mem_after.pool_hits - mem_before.pool_hits;
  stats_.mem_pool_hit_rate =
      stats_.mem_acquires > 0
          ? static_cast<double>(step_hits) /
                static_cast<double>(stats_.mem_acquires)
          : 0.0;
  if (obs::metrics_on()) {
    auto& metrics = obs::MetricsRegistry::instance();
    metrics.histogram("engine.step_ms").observe(stats_.step_seconds * 1e3);
    metrics.counter("engine.steps").add(1);
    metrics.counter("engine.tokens").add(stats_.tokens);
    metrics.gauge("engine.achieved_flops_per_second")
        .set(stats_.achieved_flops_per_second);
    metrics.gauge("engine.grad_reduce_overlap").set(stats_.grad_reduce_overlap);
    if (mixed_ != nullptr) {
      // Scaler telemetry: the live scale plus overflow-skip increments
      // since the last report (the counter stays a sum of deltas even if
      // metrics were toggled mid-run).
      metrics.gauge("optim.loss_scale").set(stats_.loss_scale);
      metrics.counter("optim.overflow_steps")
          .add(stats_.overflow_steps - reported_skipped_);
      reported_skipped_ = stats_.overflow_steps;
    }
    metrics.counter("mem.acquires").add(
        static_cast<std::int64_t>(stats_.mem_acquires));
    metrics.counter("mem.heap_allocs").add(
        static_cast<std::int64_t>(stats_.mem_heap_allocs));
    const std::string rank_prefix =
        "mem.rank" + std::to_string(groups_->world().rank());
    metrics.gauge(rank_prefix + ".peak_step_bytes")
        .set(static_cast<double>(stats_.peak_memory_bytes));
    metrics.gauge(rank_prefix + ".live_bytes")
        .set(static_cast<double>(mem_after.live_bytes));
    metrics.gauge(rank_prefix + ".pool_hit_rate").set(stats_.mem_pool_hit_rate);
  }
  return loss;
}

float PtdpEngine::evaluate(std::span<const model::Microbatch> microbatches) {
  const ParallelConfig& cfg = options_.parallel;
  for (auto& c : chunks_) c->set_dropout(0.0f);
  float loss = executor_->run_forward_only(microbatches);
  for (auto& c : chunks_) c->set_dropout(options_.model.dropout);
  if (cfg.p > 1) {
    loss = groups_->pipeline().all_reduce_scalar(loss);
  }
  if (cfg.d > 1) {
    loss = groups_->data().all_reduce_scalar(loss) / static_cast<float>(cfg.d);
  }
  return loss;
}

ckpt::NamedTensors PtdpEngine::checkpoint_tensors() {
  ckpt::NamedTensors tensors;
  for (Param* p : params()) tensors.emplace_back(p->name, &p->value);
  for (auto& [name, t] : optimizer_->state_tensors()) tensors.emplace_back(name, t);
  return tensors;
}

namespace {

// Wire format for the commit-protocol metadata exchange: each rank reports
// the relative shard file name it wrote plus the intended (bytes, crc).
std::vector<std::uint8_t> pack_entry(const ckpt::ManifestEntry& e) {
  std::vector<std::uint8_t> out(sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                                e.file.size());
  std::memcpy(out.data(), &e.bytes, sizeof(e.bytes));
  std::memcpy(out.data() + sizeof(e.bytes), &e.crc, sizeof(e.crc));
  std::memcpy(out.data() + sizeof(e.bytes) + sizeof(e.crc), e.file.data(),
              e.file.size());
  return out;
}

ckpt::ManifestEntry unpack_entry(const std::vector<std::uint8_t>& in) {
  constexpr std::size_t header = sizeof(std::uint64_t) + sizeof(std::uint32_t);
  PTDP_CHECK_GE(in.size(), header) << "malformed manifest-entry message";
  ckpt::ManifestEntry e;
  std::memcpy(&e.bytes, in.data(), sizeof(e.bytes));
  std::memcpy(&e.crc, in.data() + sizeof(e.bytes), sizeof(e.crc));
  e.file.assign(reinterpret_cast<const char*>(in.data() + header),
                in.size() - header);
  return e;
}

}  // namespace

void PtdpEngine::save_checkpoint(const std::string& dir, std::uint64_t step) {
  // Two-phase commit (§5.10 at failure-prone scale): shards land in a
  // per-step directory, then rank 0 publishes the manifest + LATEST marker
  // naming the complete set. A crash anywhere leaves either the previous
  // committed checkpoint or this one — never a torn mix.
  const auto& c = groups_->coord();
  const dist::Comm& world = groups_->world();
  const std::string sdir = ckpt::step_dir(dir, step);
  if (world.rank() == 0) std::filesystem::create_directories(sdir);
  world.barrier();  // the directory exists before any peer writes into it

  // Phase 1: every rank writes its own shard atomically.
  const std::string path = ckpt::shard_path(sdir, c.pipeline, c.tensor, c.data);
  const ckpt::SaveResult saved =
      ckpt::save_checkpoint(path, checkpoint_tensors(), {step, 0});
  ckpt::ManifestEntry mine{
      std::filesystem::path(path).lexically_relative(dir).string(),
      static_cast<std::uint64_t>(saved.bytes), saved.crc};

  // Phase 2: gather every rank's entry (doubling as the all-shards-durable
  // barrier), then rank 0 publishes the commit.
  const auto packed = pack_entry(mine);
  const auto all = world.all_gather_variable(
      std::span<const std::uint8_t>(packed.data(), packed.size()));
  if (world.rank() == 0) {
    ckpt::Manifest m{step, 0, {}};
    m.shards.reserve(all.size());
    for (const auto& msg : all) {
      ckpt::ManifestEntry e = unpack_entry(msg);
      // Precision metadata is uniform across ranks (one EngineOptions per
      // world), so rank 0 stamps it from its own options rather than
      // widening the wire format of the per-rank entry exchange.
      e.dtype = tensor::dtype_name(options_.model.dtype);
      e.has_master_weights = options_.mixed_precision;
      m.shards.push_back(std::move(e));
    }
    ckpt::write_manifest(dir, m);
    ckpt::gc_checkpoints(dir, options_.ckpt_keep);
  }
  world.barrier();  // no rank returns before the commit is visible
}

std::uint64_t PtdpEngine::load_resharded(const std::string& dir) {
  PTDP_CHECK_EQ(options_.parallel.p, 1)
      << "resharded checkpoints target pipeline-less layouts";
  const auto& c = groups_->coord();
  const auto meta = ckpt::load_checkpoint_by_name(
      ckpt::shard_path(dir, 0, c.tensor, 0), checkpoint_tensors());
  // Resume the step counter like load_checkpoint does: the LR schedule and
  // per-step stats must continue from the committed step, not restart at 0.
  step_counter_ = static_cast<std::int64_t>(meta.step);
  return meta.step;
}

std::uint64_t PtdpEngine::load_checkpoint(const std::string& dir) {
  // Rank 0 resolves (and fully validates) the newest committed checkpoint,
  // then broadcasts the chosen step so every rank loads the same one even
  // if the directory changes concurrently.
  const dist::Comm& world = groups_->world();
  std::int64_t chosen = -1;
  if (world.rank() == 0) {
    // Rejects (CHECK-fails) if the newest valid checkpoint was written at a
    // different weight dtype than this run — see find_latest_valid_checkpoint.
    if (const auto best = ckpt::find_latest_valid_checkpoint(
            dir, std::string(tensor::dtype_name(options_.model.dtype)))) {
      chosen = static_cast<std::int64_t>(best->step());
    }
  }
  world.broadcast(std::span<std::int64_t>(&chosen, 1), 0);
  PTDP_CHECK_GE(chosen, 0) << "no committed checkpoint under " << dir;
  const auto step = static_cast<std::uint64_t>(chosen);

  const auto& c = groups_->coord();
  const auto meta = ckpt::load_checkpoint(
      ckpt::shard_path(ckpt::step_dir(dir, step), c.pipeline, c.tensor, c.data),
      checkpoint_tensors());
  PTDP_CHECK_EQ(meta.step, step) << "shard/manifest step mismatch";
  step_counter_ = static_cast<std::int64_t>(meta.step);
  return meta.step;
}

}  // namespace ptdp::core
