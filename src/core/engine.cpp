#include "ptdp/core/engine.hpp"

#include "ptdp/runtime/stopwatch.hpp"

#include "ptdp/tensor/ops.hpp"
#include "ptdp/zero/sharded_optimizer.hpp"

namespace ptdp::core {

using model::GptStage;
using model::Param;
using model::StageSpec;
using pipeline::virtual_stage;

PtdpEngine::PtdpEngine(dist::Comm& world, EngineOptions options)
    : options_(std::move(options)) {
  const ParallelConfig& cfg = options_.parallel;
  cfg.validate(options_.model, options_.global_batch);
  PTDP_CHECK_EQ(world.size(), cfg.n())
      << "world size " << world.size() << " != p*t*d for " << cfg.str();

  groups_ = std::make_unique<dist::ProcessGroups>(world, cfg.p, cfg.t, cfg.d);

  // Build this rank's v chunks: chunk c is virtual stage c*p + rank with
  // layers striped in virtual-stage order (§2.2.2).
  const int rank = groups_->coord().pipeline;
  const int P = cfg.p * cfg.v;
  const std::int64_t per_stage = options_.model.num_layers / P;
  for (int c = 0; c < cfg.v; ++c) {
    const int vs = virtual_stage(rank, c, cfg.p);
    StageSpec spec;
    spec.has_embedding = vs == 0;
    spec.has_head = vs == P - 1;
    spec.layer_begin = vs * per_stage;
    spec.layer_end = (vs + 1) * per_stage;
    spec.recompute = cfg.recompute;
    chunks_.push_back(std::make_unique<GptStage>(options_.model, groups_->tensor(),
                                                 spec));
  }

  std::vector<GptStage*> raw;
  raw.reserve(chunks_.size());
  for (auto& c : chunks_) raw.push_back(c.get());
  executor_ = std::make_unique<pipeline::PipelineExecutor>(
      raw, groups_->pipeline(), cfg.schedule_params(options_.global_batch));

  std::unique_ptr<optim::Optimizer> inner;
  if (options_.optimizer == EngineOptions::Opt::kZeroAdam) {
    PTDP_CHECK(!options_.mixed_precision && options_.grad_clip == 0.0)
        << "ZeRO-sharded Adam does not compose with mixed precision or "
           "clipping in this engine";
    inner = std::make_unique<zero::ZeroShardedAdam>(
        params(), groups_->data(), zero::ZeroAdamOptions{options_.adam});
  } else if (options_.optimizer == EngineOptions::Opt::kSgd) {
    inner = std::make_unique<optim::Sgd>(params(), options_.sgd);
  } else {
    inner = std::make_unique<optim::Adam>(params(), options_.adam);
  }
  if (options_.mixed_precision) {
    auto mixed = std::make_unique<optim::MixedPrecisionOptimizer>(std::move(inner),
                                                                  options_.scaler);
    mixed_ = mixed.get();
    optimizer_ = std::move(mixed);
  } else {
    optimizer_ = std::move(inner);
  }
  if (options_.lr_schedule) lr_schedule_.emplace(*options_.lr_schedule);
}

model::ParamRefs PtdpEngine::params() {
  model::ParamRefs refs;
  for (auto& c : chunks_) {
    model::ParamRefs r = c->params();
    refs.insert(refs.end(), r.begin(), r.end());
  }
  return refs;
}

float PtdpEngine::train_step(std::span<const model::Microbatch> microbatches) {
  const Stopwatch stopwatch;
  const ParallelConfig& cfg = options_.parallel;
  if (lr_schedule_) optimizer_->set_lr(lr_schedule_->at(step_counter_));
  for (auto& c : chunks_) c->zero_grads();

  const float extra_scale = mixed_ != nullptr ? mixed_->scaler().scale() : 1.0f;
  float loss = executor_->run_batch(microbatches, extra_scale);

  // Tied-embedding grad sync: the first and last stages each hold a copy of
  // the word-embedding matrix and accumulate partial grads; their sum is
  // the true grad (this is what the embedding group exists for).
  if (cfg.p > 1 && groups_->in_embedding_group()) {
    for (auto& c : chunks_) {
      if (Param* w = c->word_embedding_param()) {
        groups_->embedding().all_reduce(w->grad.data());
      }
    }
  }

  // Data-parallel gradient all-reduce (mean over replicas), bucketed DDP
  // style: flatten consecutive grads into buckets of up to dp_bucket_elems
  // so the ring sees fewer, larger messages. The ZeRO optimizer owns the
  // reduction itself (reduce-scatter inside step()).
  const bool zero_owns_reduction =
      options_.optimizer == EngineOptions::Opt::kZeroAdam;
  if (cfg.d > 1 && !zero_owns_reduction) {
    const float inv_d = 1.0f / static_cast<float>(cfg.d);
    const std::int64_t cap = options_.dp_bucket_elems;
    model::ParamRefs refs = params();
    if (cap <= 0) {
      for (Param* p : refs) {
        groups_->data().all_reduce(p->grad.data());
        tensor::scale_(p->grad, inv_d);
      }
    } else {
      std::vector<float> bucket;
      std::vector<Param*> members;
      auto flush = [&] {
        if (bucket.empty()) return;
        groups_->data().all_reduce(std::span<float>(bucket));
        std::size_t off = 0;
        for (Param* p : members) {
          auto g = p->grad.data();
          for (std::size_t j = 0; j < g.size(); ++j) g[j] = bucket[off + j] * inv_d;
          off += g.size();
        }
        bucket.clear();
        members.clear();
      };
      for (Param* p : refs) {
        auto g = p->grad.data();
        if (!bucket.empty() &&
            static_cast<std::int64_t>(bucket.size() + g.size()) > cap) {
          flush();
        }
        bucket.insert(bucket.end(), g.begin(), g.end());
        members.push_back(p);
      }
      flush();
    }
  }

  // Broadcast the loss: only the last pipeline stage computed it.
  if (cfg.p > 1) {
    loss = groups_->pipeline().all_reduce_scalar(loss);  // one non-zero term
  }
  if (cfg.d > 1) {
    loss = groups_->data().all_reduce_scalar(loss) / static_cast<float>(cfg.d);
  }

  if (options_.grad_clip > 0.0) {
    // With mixed precision the grads carry the loss scale; clipping to
    // scale*max_norm applies the same multiplier unscaled clipping would.
    const double max_norm = options_.grad_clip * extra_scale;
    const dist::Comm* tp = cfg.t > 1 ? &groups_->tensor() : nullptr;
    const dist::Comm* pp = cfg.p > 1 ? &groups_->pipeline() : nullptr;
    model::ParamRefs refs = params();
    last_grad_norm_ = optim::clip_grad_norm(refs, max_norm, tp, pp) / extra_scale;
  }

  optimizer_->step();

  stats_.step = step_counter_++;
  stats_.loss = loss;
  stats_.grad_norm = last_grad_norm_;
  stats_.lr = optimizer_->lr();
  stats_.step_seconds = stopwatch.elapsed_seconds();
  stats_.tokens = options_.global_batch * options_.model.seq;
  stats_.tokens_per_second =
      stats_.step_seconds > 0 ? stats_.tokens / stats_.step_seconds : 0.0;
  return loss;
}

float PtdpEngine::evaluate(std::span<const model::Microbatch> microbatches) {
  const ParallelConfig& cfg = options_.parallel;
  for (auto& c : chunks_) c->set_dropout(0.0f);
  float loss = executor_->run_forward_only(microbatches);
  for (auto& c : chunks_) c->set_dropout(options_.model.dropout);
  if (cfg.p > 1) {
    loss = groups_->pipeline().all_reduce_scalar(loss);
  }
  if (cfg.d > 1) {
    loss = groups_->data().all_reduce_scalar(loss) / static_cast<float>(cfg.d);
  }
  return loss;
}

ckpt::NamedTensors PtdpEngine::checkpoint_tensors() {
  ckpt::NamedTensors tensors;
  for (Param* p : params()) tensors.emplace_back(p->name, &p->value);
  for (auto& [name, t] : optimizer_->state_tensors()) tensors.emplace_back(name, t);
  return tensors;
}

void PtdpEngine::save_checkpoint(const std::string& dir, std::uint64_t step) {
  const auto& c = groups_->coord();
  ckpt::CheckpointMeta meta{step, 0};
  ckpt::save_checkpoint(ckpt::shard_path(dir, c.pipeline, c.tensor, c.data),
                        checkpoint_tensors(), meta);
}

std::uint64_t PtdpEngine::load_resharded(const std::string& dir) {
  PTDP_CHECK_EQ(options_.parallel.p, 1)
      << "resharded checkpoints target pipeline-less layouts";
  const auto& c = groups_->coord();
  const auto meta = ckpt::load_checkpoint_by_name(
      ckpt::shard_path(dir, 0, c.tensor, 0), checkpoint_tensors());
  return meta.step;
}

std::uint64_t PtdpEngine::load_checkpoint(const std::string& dir) {
  const auto& c = groups_->coord();
  const auto meta = ckpt::load_checkpoint(
      ckpt::shard_path(dir, c.pipeline, c.tensor, c.data), checkpoint_tensors());
  step_counter_ = static_cast<std::int64_t>(meta.step);
  return meta.step;
}

}  // namespace ptdp::core
