#include "ptdp/core/analytics.hpp"

#include <cmath>

namespace ptdp::core {

namespace {
constexpr double kFp16Bytes = 2.0;
constexpr double kFp32Bytes = 4.0;
}  // namespace

double bubble_fraction(const ParallelConfig& cfg, std::int64_t global_batch) {
  const double m = static_cast<double>(cfg.microbatches(global_batch));
  return static_cast<double>(cfg.p - 1) / (static_cast<double>(cfg.v) * m);
}

double estimated_batch_time(const ParallelConfig& cfg, std::int64_t global_batch,
                            double tf_of_b, double tb_of_b) {
  const double b_prime = static_cast<double>(global_batch) / cfg.d;
  return (b_prime / static_cast<double>(cfg.b) + cfg.p - 1) * (tf_of_b + tb_of_b);
}

double pipeline_p2p_bytes_per_microbatch(const model::GptConfig& m,
                                         const ParallelConfig& cfg) {
  double elems = static_cast<double>(cfg.b) * m.seq * m.hidden;
  if (cfg.scatter_gather) elems /= cfg.t;  // §4.1: send 1/t, all-gather on NVLink
  return elems * kFp16Bytes;
}

double pipeline_p2p_bytes_per_batch(const model::GptConfig& m,
                                    const ParallelConfig& cfg,
                                    std::int64_t global_batch) {
  const double per_mb = pipeline_p2p_bytes_per_microbatch(m, cfg);
  const double mb = static_cast<double>(cfg.microbatches(global_batch));
  // v chunk boundaries per device under interleaving (§2.2.2's v× factor).
  return per_mb * mb * static_cast<double>(cfg.v);
}

double tensor_parallel_bytes_per_microbatch(const model::GptConfig& m,
                                            const ParallelConfig& cfg) {
  if (cfg.t == 1) return 0.0;
  const double l_stage =
      static_cast<double>(m.num_layers) / (static_cast<double>(cfg.p) * cfg.v);
  const double per_layer = 8.0 * static_cast<double>(cfg.b) * m.seq * m.hidden *
                           (static_cast<double>(cfg.t - 1) / cfg.t);
  // Per device the interleaved chunks together still hold l/p layers.
  return l_stage * static_cast<double>(cfg.v) * per_layer * kFp16Bytes;
}

double data_parallel_bytes_per_batch(const model::GptConfig& m,
                                     const ParallelConfig& cfg) {
  if (cfg.d == 1) return 0.0;
  const double grads = params_per_gpu(m, cfg);
  return 2.0 * (static_cast<double>(cfg.d - 1) / cfg.d) * grads * kFp32Bytes;
}

double params_per_gpu(const model::GptConfig& m, const ParallelConfig& cfg) {
  return m.paper_params() / (static_cast<double>(cfg.p) * cfg.t);
}

double activation_bytes_per_layer(const model::GptConfig& m, std::int64_t b,
                                  bool recompute) {
  const double sbh = static_cast<double>(m.seq) * b * m.hidden;
  if (recompute) {
    return 2.0 * sbh;  // stash only the fp16 layer input (§3.5)
  }
  // Full intermediate set per transformer layer (fp16 activations +
  // fp32-as-bytes softmax/dropout bookkeeping), the standard
  // sbh·(34 + 5·a·s/h) accounting.
  const double attn_quadratic =
      5.0 * static_cast<double>(m.heads) * m.seq / m.hidden;
  return sbh * (34.0 + attn_quadratic);
}

MemoryEstimate memory_per_gpu(const model::GptConfig& m, const ParallelConfig& cfg,
                              std::int64_t global_batch) {
  MemoryEstimate est;
  const double params = params_per_gpu(m, cfg);
  est.param_bytes = params * kFp16Bytes;
  // Mixed-precision Adam: fp32 master + fp32 m + fp32 v + fp32 grads.
  est.optimizer_bytes = params * (4.0 * kFp32Bytes);

  // In-flight microbatches at the schedule's peak.
  const std::int64_t mcount = cfg.microbatches(global_batch);
  double in_flight;
  switch (cfg.schedule) {
    case pipeline::ScheduleType::kGPipe:
      in_flight = static_cast<double>(mcount);
      break;
    case pipeline::ScheduleType::kOneFOneB:
      in_flight = static_cast<double>(std::min<std::int64_t>(cfg.p, mcount));
      break;
    case pipeline::ScheduleType::kInterleaved:
      in_flight = std::min<double>(
          static_cast<double>(mcount) * cfg.v,
          static_cast<double>(cfg.p) * cfg.v + cfg.p - 1) /
          cfg.v;  // expressed in full-device microbatch equivalents
      break;
    default:
      in_flight = static_cast<double>(cfg.p);
  }
  const double layers_per_device =
      static_cast<double>(m.num_layers) / cfg.p;  // all chunks combined
  double act = in_flight * layers_per_device *
               activation_bytes_per_layer(m, cfg.b, cfg.recompute);
  if (cfg.recompute) {
    // One layer's full working set is live during its recomputed backward.
    act += activation_bytes_per_layer(m, cfg.b, /*recompute=*/false);
  }
  est.activation_bytes = act;
  return est;
}

double checkpoint_memory(double c, double l, double a_input, double a_intermediate) {
  return c * a_input + (l / c) * a_intermediate;
}

double optimal_checkpoints(double l, double a_input, double a_intermediate) {
  return std::sqrt(l * a_intermediate / a_input);
}

double flops_per_iteration(const model::GptConfig& m, std::int64_t global_batch) {
  return m.paper_flops_per_iteration(global_batch);
}

double layer_forward_flops(const model::GptConfig& m, std::int64_t batch) {
  const double B = static_cast<double>(batch);
  const double s = static_cast<double>(m.seq);
  const double h = static_cast<double>(m.hidden);
  return 24.0 * B * s * h * h + 4.0 * B * s * s * h;
}

double training_time_seconds(double tokens, double params, double n_gpus,
                             double flops_per_gpu) {
  return 8.0 * tokens * params / (n_gpus * flops_per_gpu);
}

double training_time_days(double tokens, double params, double n_gpus,
                          double flops_per_gpu) {
  return training_time_seconds(tokens, params, n_gpus, flops_per_gpu) / 86400.0;
}

}  // namespace ptdp::core
