#include "ptdp/mem/pool.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

namespace ptdp::mem {
namespace {

// Size classes: powers of two from 64 floats (256 B) to 2^24 floats
// (64 MiB). Anything larger is allocated exactly and never pooled —
// giant one-off buffers (full-vocab gathers, reshard scratch) would
// otherwise pin memory forever.
constexpr std::size_t kMinClassLog2 = 6;
constexpr std::size_t kMaxClassLog2 = 24;
constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;
constexpr std::size_t kMaxPooledFloats = std::size_t{1} << kMaxClassLog2;
// Per-thread cache depth per class; overflow spills to the global pool.
// Deep enough that a rank thread's steady-state working set never spills:
// a block that spills is re-acquired through the global pool, and whether
// the spill lands before a peer thread's acquire drains it is a scheduling
// race — the loser falls through to the heap, which shows up as sporadic
// steady-state heap_allocs under machine load (ZeroPoolGrowthPerStep).
constexpr std::size_t kThreadCacheCap = 64;
// Global pool depth per class; overflow goes back to the heap.
constexpr std::size_t kGlobalCacheCap = 64;
constexpr std::size_t kAlign = 64;

std::atomic<bool> g_pool_enabled{[] {
  const char* env = std::getenv("PTDP_MEM_POOL");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}()};

// True iff cap is exactly one of our size classes — i.e. a block we are
// allowed to recycle. Exact-size huge/pool-off blocks fail this test and
// go straight back to the heap, which is what makes flipping the pool on
// and off mid-process safe.
bool is_class_capacity(std::size_t cap) {
  if (cap < (std::size_t{1} << kMinClassLog2) || cap > kMaxPooledFloats) {
    return false;
  }
  return (cap & (cap - 1)) == 0;
}

std::size_t class_index(std::size_t cap) {
  std::size_t idx = 0;
  while ((std::size_t{1} << (kMinClassLog2 + idx)) < cap) ++idx;
  return idx;
}

float* heap_alloc(std::size_t floats) {
  return static_cast<float*>(
      ::operator new(floats * sizeof(float), std::align_val_t{kAlign}));
}

void heap_free(float* p) { ::operator delete(p, std::align_val_t{kAlign}); }

struct GlobalPool {
  std::mutex mu;
  std::vector<float*> lists[kNumClasses];

  ~GlobalPool() {
    for (auto& list : lists) {
      for (float* p : list) heap_free(p);
    }
  }
};

GlobalPool& global_pool() {
  static GlobalPool* pool = new GlobalPool();  // leak-on-exit is fine;
  return *pool;  // destructor order vs. late thread exits is not.
}

struct GlobalCounters {
  std::atomic<std::int64_t> live{0};
  std::atomic<std::int64_t> peak{0};
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> heap_allocs{0};
  std::atomic<std::uint64_t> releases{0};
  std::atomic<std::uint64_t> bytes_recycled{0};
};

GlobalCounters& global_counters() {
  static GlobalCounters c;
  return c;
}

void bump_global_live(std::int64_t delta) {
  GlobalCounters& g = global_counters();
  const std::int64_t now =
      g.live.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (delta > 0) {
    std::int64_t prev = g.peak.load(std::memory_order_relaxed);
    while (prev < now &&
           !g.peak.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
}

struct ThreadCache {
  std::vector<float*> lists[kNumClasses];
  PoolStats stats;

  ~ThreadCache() { flush(); }

  void flush() {
    GlobalPool& gp = global_pool();
    std::lock_guard<std::mutex> lock(gp.mu);
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      for (float* p : lists[c]) {
        if (gp.lists[c].size() < kGlobalCacheCap) {
          gp.lists[c].push_back(p);
        } else {
          heap_free(p);
        }
      }
      lists[c].clear();
    }
  }
};

ThreadCache& thread_cache() {
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

bool pool_enabled() { return g_pool_enabled.load(std::memory_order_relaxed); }

void set_pool_enabled(bool on) {
  g_pool_enabled.store(on, std::memory_order_relaxed);
}

std::size_t size_class_floats(std::size_t n) {
  if (n > kMaxPooledFloats) return n;
  std::size_t cap = std::size_t{1} << kMinClassLog2;
  while (cap < n) cap <<= 1;
  return cap;
}

Block acquire(std::size_t n) {
  ThreadCache& tc = thread_cache();
  GlobalCounters& g = global_counters();
  tc.stats.acquires += 1;
  g.acquires.fetch_add(1, std::memory_order_relaxed);

  const std::int64_t bytes = static_cast<std::int64_t>(n * sizeof(float));
  tc.stats.live_bytes += bytes;
  if (tc.stats.live_bytes > tc.stats.peak_bytes) {
    tc.stats.peak_bytes = tc.stats.live_bytes;
  }
  bump_global_live(bytes);

  Block blk;
  if (pool_enabled() && n <= kMaxPooledFloats) {
    blk.capacity = size_class_floats(n);
    const std::size_t c = class_index(blk.capacity);
    if (!tc.lists[c].empty()) {
      blk.data = tc.lists[c].back();
      tc.lists[c].pop_back();
    } else {
      GlobalPool& gp = global_pool();
      std::lock_guard<std::mutex> lock(gp.mu);
      if (!gp.lists[c].empty()) {
        blk.data = gp.lists[c].back();
        gp.lists[c].pop_back();
      }
    }
    if (blk.data != nullptr) {
      tc.stats.pool_hits += 1;
      tc.stats.bytes_recycled += blk.capacity * sizeof(float);
      g.pool_hits.fetch_add(1, std::memory_order_relaxed);
      g.bytes_recycled.fetch_add(blk.capacity * sizeof(float),
                                 std::memory_order_relaxed);
      return blk;
    }
  } else {
    // Pool off or huge: exact-size block, intentionally NOT a class
    // capacity unless n happens to be one — release() sorts it out.
    blk.capacity = n == 0 ? 1 : n;
  }
  blk.data = heap_alloc(blk.capacity);
  tc.stats.heap_allocs += 1;
  g.heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return blk;
}

void release(float* data, std::size_t capacity) {
  if (data == nullptr) return;
  ThreadCache& tc = thread_cache();
  GlobalCounters& g = global_counters();
  tc.stats.releases += 1;
  g.releases.fetch_add(1, std::memory_order_relaxed);

  if (pool_enabled() && is_class_capacity(capacity)) {
    const std::size_t c = class_index(capacity);
    if (tc.lists[c].size() < kThreadCacheCap) {
      tc.lists[c].push_back(data);
      return;
    }
    GlobalPool& gp = global_pool();
    std::lock_guard<std::mutex> lock(gp.mu);
    if (gp.lists[c].size() < kGlobalCacheCap) {
      gp.lists[c].push_back(data);
      return;
    }
  }
  heap_free(data);
}

void account_adjust(std::int64_t floats_delta) {
  const std::int64_t bytes =
      floats_delta * static_cast<std::int64_t>(sizeof(float));
  PoolStats& st = thread_cache().stats;
  st.live_bytes += bytes;
  if (st.live_bytes > st.peak_bytes) st.peak_bytes = st.live_bytes;
  bump_global_live(bytes);
}

PoolStats thread_stats() { return thread_cache().stats; }

PoolStats global_stats() {
  GlobalCounters& g = global_counters();
  PoolStats s;
  s.live_bytes = g.live.load(std::memory_order_relaxed);
  s.peak_bytes = g.peak.load(std::memory_order_relaxed);
  s.acquires = g.acquires.load(std::memory_order_relaxed);
  s.pool_hits = g.pool_hits.load(std::memory_order_relaxed);
  s.heap_allocs = g.heap_allocs.load(std::memory_order_relaxed);
  s.releases = g.releases.load(std::memory_order_relaxed);
  s.bytes_recycled = g.bytes_recycled.load(std::memory_order_relaxed);
  return s;
}

void reset_thread_peak() {
  ThreadCache& tc = thread_cache();
  tc.stats.peak_bytes = tc.stats.live_bytes;
}

void reset_global_peak() {
  GlobalCounters& g = global_counters();
  g.peak.store(g.live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

void trim_thread_cache() { thread_cache().flush(); }

Buffer::Buffer(std::size_t n) : block_(acquire(n)), size_(n) {}

Buffer::~Buffer() {
  account_adjust(-static_cast<std::int64_t>(size_));
  release(block_.data, block_.capacity);
}

}  // namespace ptdp::mem
