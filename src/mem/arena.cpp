#include "ptdp/mem/arena.hpp"

#include "ptdp/runtime/check.hpp"

namespace ptdp::mem {

Arena::Arena(std::size_t num_slots) : slots_(num_slots) {}

Arena::~Arena() {
  for (Slot& s : slots_) {
    if (s.block.data != nullptr) {
      account_adjust(-static_cast<std::int64_t>(s.floats));
      release(s.block.data, s.block.capacity);
    }
  }
}

float* Arena::ensure(std::size_t slot, std::size_t floats) {
  PTDP_CHECK_LT(slot, slots_.size());
  Slot& s = slots_[slot];
  if (s.block.data == nullptr || floats > s.block.capacity) {
    if (s.block.data != nullptr) {
      account_adjust(-static_cast<std::int64_t>(s.floats));
      release(s.block.data, s.block.capacity);
    }
    s.block = acquire(floats);
    s.floats = floats;
  } else if (floats > s.floats) {
    // High-water grew but still fits the block: adjust the accounted
    // request so live bytes stay exact without a reacquire.
    account_adjust(static_cast<std::int64_t>(floats - s.floats));
    s.floats = floats;
  }
  return s.block.data;
}

std::size_t Arena::slot_floats(std::size_t slot) const {
  PTDP_CHECK_LT(slot, slots_.size());
  return slots_[slot].floats;
}

}  // namespace ptdp::mem
