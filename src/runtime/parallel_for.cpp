#include "ptdp/runtime/parallel_for.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ptdp/runtime/check.hpp"

namespace ptdp::runtime {

namespace {

thread_local int g_region_depth = 0;

struct RegionGuard {
  RegionGuard() { ++g_region_depth; }
  ~RegionGuard() { --g_region_depth; }
};

/// One parallel_for invocation. Shared by the caller and any helpers that
/// pick it up; chunks are claimed from `next` so the fastest thread does the
/// most work and the caller can never be starved.
struct Region {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t chunk = 1;
  std::int64_t nchunks = 0;
  const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;

  std::atomic<std::int64_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  std::int64_t completed = 0;  // guarded by mu
  std::exception_ptr error;    // guarded by mu

  /// Claim and run chunks until none remain. Called by the owning thread and
  /// by helpers; exceptions are captured, never propagated to a helper.
  void work() {
    RegionGuard nested;
    std::int64_t finished = 0;
    std::exception_ptr first;
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) break;
      const std::int64_t b = begin + c * chunk;
      const std::int64_t e = std::min(b + chunk, end);
      try {
        (*body)(b, e);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
      ++finished;
    }
    if (finished > 0 || first) {
      std::lock_guard lock(mu);
      completed += finished;
      if (first && !error) error = first;
      if (completed == nchunks) cv.notify_all();
    }
  }

  void wait() {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return completed == nchunks; });
    if (error) std::rethrow_exception(error);
  }
};

/// The process-wide intra-op helper pool. Holds `requested - 1` worker
/// threads, capped at hardware_concurrency so a gang of rank threads doing
/// parallel kernels cannot oversubscribe the machine through this pool.
class IntraOpPool {
 public:
  static IntraOpPool& instance() {
    static IntraOpPool pool;
    return pool;
  }

  std::size_t requested_threads() {
    ensure_init();
    return requested_.load(std::memory_order_relaxed);
  }

  std::size_t helper_count() {
    ensure_init();
    std::lock_guard lock(config_mu_);
    return workers_.size();
  }

  void set_threads(std::size_t n) {
    PTDP_CHECK_GT(n, 0u) << "intra-op thread count must be >= 1";
    PTDP_CHECK_EQ(g_region_depth, 0)
        << "set_intra_op_threads() inside a parallel region";
    std::lock_guard lock(config_mu_);
    requested_.store(n, std::memory_order_relaxed);
    initialized_.store(true, std::memory_order_release);
    resize_locked(target_helpers(n));
  }

  bool parallel_enabled() {
    ensure_init();
    return requested_.load(std::memory_order_relaxed) > 1 &&
           have_helpers_.load(std::memory_order_relaxed) && g_region_depth == 0;
  }

  /// Offer `copies` help tasks for `region` to the pool. Helpers that arrive
  /// after all chunks are claimed simply return.
  void offer(const std::shared_ptr<Region>& region, std::size_t copies) {
    {
      std::lock_guard lock(queue_mu_);
      for (std::size_t i = 0; i < copies; ++i) queue_.push_back(region);
    }
    if (copies == 1) {
      queue_cv_.notify_one();
    } else {
      queue_cv_.notify_all();
    }
  }

 private:
  IntraOpPool() = default;

  ~IntraOpPool() {
    std::lock_guard lock(config_mu_);
    resize_locked(0);
  }

  static std::size_t hardware_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : hc;
  }

  static std::size_t target_helpers(std::size_t requested) {
    const std::size_t helpers = requested - 1;
    return std::min(helpers, hardware_threads());
  }

  void ensure_init() {
    if (initialized_.load(std::memory_order_acquire)) return;
    std::lock_guard lock(config_mu_);
    if (initialized_.load(std::memory_order_relaxed)) return;
    std::size_t n = detail::env_intra_op_threads();
    if (n == 0) n = hardware_threads();
    requested_.store(n, std::memory_order_relaxed);
    resize_locked(target_helpers(n));
    initialized_.store(true, std::memory_order_release);
  }

  // config_mu_ held. Stops all workers (pending help offers are dropped —
  // callers still finish because they claim their own chunks) and restarts
  // `n` of them.
  void resize_locked(std::size_t n) {
    if (workers_.size() == n) return;
    {
      std::lock_guard lock(queue_mu_);
      stopping_ = true;
      queue_.clear();
    }
    queue_cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    {
      std::lock_guard lock(queue_mu_);
      stopping_ = false;
    }
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    have_helpers_.store(n > 0, std::memory_order_relaxed);
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Region> region;
      {
        std::unique_lock lock(queue_mu_);
        queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (stopping_) return;
        region = std::move(queue_.front());
        queue_.pop_front();
      }
      region->work();
    }
  }

  std::mutex config_mu_;
  std::atomic<bool> initialized_{false};
  std::atomic<std::size_t> requested_{1};
  std::atomic<bool> have_helpers_{false};
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Region>> queue_;
  bool stopping_ = false;
};

}  // namespace

void set_intra_op_threads(std::size_t n) { IntraOpPool::instance().set_threads(n); }

std::size_t intra_op_threads() { return IntraOpPool::instance().requested_threads(); }

bool in_parallel_region() { return g_region_depth > 0; }

namespace detail {

std::size_t env_intra_op_threads() {
  const char* env = std::getenv("PTDP_NUM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* endp = nullptr;
  const long v = std::strtol(env, &endp, 10);
  if (endp == env || *endp != '\0' || v < 1) return 0;
  return static_cast<std::size_t>(v);
}

bool parallel_enabled() { return IntraOpPool::instance().parallel_enabled(); }

void parallel_run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  auto& pool = IntraOpPool::instance();
  auto region = std::make_shared<Region>();
  region->begin = begin;
  region->end = end;
  region->chunk = grain;
  region->nchunks = (end - begin + grain - 1) / grain;
  region->body = &body;

  // Enough helpers to fill the requested width, but never more than there
  // are chunks beyond the caller's first one.
  const std::size_t requested = pool.requested_threads();
  const std::size_t want =
      std::min<std::size_t>(requested - 1,
                            static_cast<std::size_t>(region->nchunks - 1));
  const std::size_t copies = std::min(want, pool.helper_count());
  if (copies > 0) pool.offer(region, copies);
  region->work();
  region->wait();
}

}  // namespace detail

}  // namespace ptdp::runtime
