# Empty dependencies file for ptdp_zero.
# This may be replaced when dependencies are built.
