file(REMOVE_RECURSE
  "libptdp_zero.a"
)
