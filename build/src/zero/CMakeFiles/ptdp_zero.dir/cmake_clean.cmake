file(REMOVE_RECURSE
  "CMakeFiles/ptdp_zero.dir/sharded_optimizer.cpp.o"
  "CMakeFiles/ptdp_zero.dir/sharded_optimizer.cpp.o.d"
  "libptdp_zero.a"
  "libptdp_zero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_zero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
