file(REMOVE_RECURSE
  "libptdp_sim.a"
)
