file(REMOVE_RECURSE
  "CMakeFiles/ptdp_sim.dir/cost_model.cpp.o"
  "CMakeFiles/ptdp_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/ptdp_sim.dir/hardware.cpp.o"
  "CMakeFiles/ptdp_sim.dir/hardware.cpp.o.d"
  "CMakeFiles/ptdp_sim.dir/simulator.cpp.o"
  "CMakeFiles/ptdp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ptdp_sim.dir/zero_model.cpp.o"
  "CMakeFiles/ptdp_sim.dir/zero_model.cpp.o.d"
  "libptdp_sim.a"
  "libptdp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
