# Empty compiler generated dependencies file for ptdp_sim.
# This may be replaced when dependencies are built.
