file(REMOVE_RECURSE
  "libptdp_dist.a"
)
