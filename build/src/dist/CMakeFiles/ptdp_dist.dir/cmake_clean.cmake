file(REMOVE_RECURSE
  "CMakeFiles/ptdp_dist.dir/comm.cpp.o"
  "CMakeFiles/ptdp_dist.dir/comm.cpp.o.d"
  "CMakeFiles/ptdp_dist.dir/process_groups.cpp.o"
  "CMakeFiles/ptdp_dist.dir/process_groups.cpp.o.d"
  "libptdp_dist.a"
  "libptdp_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
