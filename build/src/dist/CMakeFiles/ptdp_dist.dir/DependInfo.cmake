
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/comm.cpp" "src/dist/CMakeFiles/ptdp_dist.dir/comm.cpp.o" "gcc" "src/dist/CMakeFiles/ptdp_dist.dir/comm.cpp.o.d"
  "/root/repo/src/dist/process_groups.cpp" "src/dist/CMakeFiles/ptdp_dist.dir/process_groups.cpp.o" "gcc" "src/dist/CMakeFiles/ptdp_dist.dir/process_groups.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
