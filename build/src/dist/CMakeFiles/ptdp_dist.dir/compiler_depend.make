# Empty compiler generated dependencies file for ptdp_dist.
# This may be replaced when dependencies are built.
