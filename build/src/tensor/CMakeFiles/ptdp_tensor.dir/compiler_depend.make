# Empty compiler generated dependencies file for ptdp_tensor.
# This may be replaced when dependencies are built.
