file(REMOVE_RECURSE
  "CMakeFiles/ptdp_tensor.dir/ops.cpp.o"
  "CMakeFiles/ptdp_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/ptdp_tensor.dir/tensor.cpp.o"
  "CMakeFiles/ptdp_tensor.dir/tensor.cpp.o.d"
  "libptdp_tensor.a"
  "libptdp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
