file(REMOVE_RECURSE
  "libptdp_tensor.a"
)
