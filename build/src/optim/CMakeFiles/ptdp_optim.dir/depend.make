# Empty dependencies file for ptdp_optim.
# This may be replaced when dependencies are built.
