file(REMOVE_RECURSE
  "CMakeFiles/ptdp_optim.dir/mixed_precision.cpp.o"
  "CMakeFiles/ptdp_optim.dir/mixed_precision.cpp.o.d"
  "CMakeFiles/ptdp_optim.dir/optimizer.cpp.o"
  "CMakeFiles/ptdp_optim.dir/optimizer.cpp.o.d"
  "libptdp_optim.a"
  "libptdp_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
