
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/mixed_precision.cpp" "src/optim/CMakeFiles/ptdp_optim.dir/mixed_precision.cpp.o" "gcc" "src/optim/CMakeFiles/ptdp_optim.dir/mixed_precision.cpp.o.d"
  "/root/repo/src/optim/optimizer.cpp" "src/optim/CMakeFiles/ptdp_optim.dir/optimizer.cpp.o" "gcc" "src/optim/CMakeFiles/ptdp_optim.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/ptdp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ptdp_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ptdp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
