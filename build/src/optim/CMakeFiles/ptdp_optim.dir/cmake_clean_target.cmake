file(REMOVE_RECURSE
  "libptdp_optim.a"
)
