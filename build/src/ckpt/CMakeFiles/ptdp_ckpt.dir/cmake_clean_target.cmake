file(REMOVE_RECURSE
  "libptdp_ckpt.a"
)
