file(REMOVE_RECURSE
  "CMakeFiles/ptdp_ckpt.dir/checkpoint.cpp.o"
  "CMakeFiles/ptdp_ckpt.dir/checkpoint.cpp.o.d"
  "CMakeFiles/ptdp_ckpt.dir/reshard.cpp.o"
  "CMakeFiles/ptdp_ckpt.dir/reshard.cpp.o.d"
  "libptdp_ckpt.a"
  "libptdp_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
