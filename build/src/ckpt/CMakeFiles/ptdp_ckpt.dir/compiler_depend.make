# Empty compiler generated dependencies file for ptdp_ckpt.
# This may be replaced when dependencies are built.
