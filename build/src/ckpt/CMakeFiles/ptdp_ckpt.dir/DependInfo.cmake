
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/checkpoint.cpp" "src/ckpt/CMakeFiles/ptdp_ckpt.dir/checkpoint.cpp.o" "gcc" "src/ckpt/CMakeFiles/ptdp_ckpt.dir/checkpoint.cpp.o.d"
  "/root/repo/src/ckpt/reshard.cpp" "src/ckpt/CMakeFiles/ptdp_ckpt.dir/reshard.cpp.o" "gcc" "src/ckpt/CMakeFiles/ptdp_ckpt.dir/reshard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ptdp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
