
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/attention.cpp" "src/model/CMakeFiles/ptdp_model.dir/attention.cpp.o" "gcc" "src/model/CMakeFiles/ptdp_model.dir/attention.cpp.o.d"
  "/root/repo/src/model/embedding.cpp" "src/model/CMakeFiles/ptdp_model.dir/embedding.cpp.o" "gcc" "src/model/CMakeFiles/ptdp_model.dir/embedding.cpp.o.d"
  "/root/repo/src/model/generate.cpp" "src/model/CMakeFiles/ptdp_model.dir/generate.cpp.o" "gcc" "src/model/CMakeFiles/ptdp_model.dir/generate.cpp.o.d"
  "/root/repo/src/model/head.cpp" "src/model/CMakeFiles/ptdp_model.dir/head.cpp.o" "gcc" "src/model/CMakeFiles/ptdp_model.dir/head.cpp.o.d"
  "/root/repo/src/model/linear.cpp" "src/model/CMakeFiles/ptdp_model.dir/linear.cpp.o" "gcc" "src/model/CMakeFiles/ptdp_model.dir/linear.cpp.o.d"
  "/root/repo/src/model/mlp.cpp" "src/model/CMakeFiles/ptdp_model.dir/mlp.cpp.o" "gcc" "src/model/CMakeFiles/ptdp_model.dir/mlp.cpp.o.d"
  "/root/repo/src/model/param.cpp" "src/model/CMakeFiles/ptdp_model.dir/param.cpp.o" "gcc" "src/model/CMakeFiles/ptdp_model.dir/param.cpp.o.d"
  "/root/repo/src/model/stage.cpp" "src/model/CMakeFiles/ptdp_model.dir/stage.cpp.o" "gcc" "src/model/CMakeFiles/ptdp_model.dir/stage.cpp.o.d"
  "/root/repo/src/model/transformer_layer.cpp" "src/model/CMakeFiles/ptdp_model.dir/transformer_layer.cpp.o" "gcc" "src/model/CMakeFiles/ptdp_model.dir/transformer_layer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ptdp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ptdp_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
