file(REMOVE_RECURSE
  "libptdp_model.a"
)
