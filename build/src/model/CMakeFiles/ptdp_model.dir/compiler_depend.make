# Empty compiler generated dependencies file for ptdp_model.
# This may be replaced when dependencies are built.
