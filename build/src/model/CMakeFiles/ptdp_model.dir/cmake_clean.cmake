file(REMOVE_RECURSE
  "CMakeFiles/ptdp_model.dir/attention.cpp.o"
  "CMakeFiles/ptdp_model.dir/attention.cpp.o.d"
  "CMakeFiles/ptdp_model.dir/embedding.cpp.o"
  "CMakeFiles/ptdp_model.dir/embedding.cpp.o.d"
  "CMakeFiles/ptdp_model.dir/generate.cpp.o"
  "CMakeFiles/ptdp_model.dir/generate.cpp.o.d"
  "CMakeFiles/ptdp_model.dir/head.cpp.o"
  "CMakeFiles/ptdp_model.dir/head.cpp.o.d"
  "CMakeFiles/ptdp_model.dir/linear.cpp.o"
  "CMakeFiles/ptdp_model.dir/linear.cpp.o.d"
  "CMakeFiles/ptdp_model.dir/mlp.cpp.o"
  "CMakeFiles/ptdp_model.dir/mlp.cpp.o.d"
  "CMakeFiles/ptdp_model.dir/param.cpp.o"
  "CMakeFiles/ptdp_model.dir/param.cpp.o.d"
  "CMakeFiles/ptdp_model.dir/stage.cpp.o"
  "CMakeFiles/ptdp_model.dir/stage.cpp.o.d"
  "CMakeFiles/ptdp_model.dir/transformer_layer.cpp.o"
  "CMakeFiles/ptdp_model.dir/transformer_layer.cpp.o.d"
  "libptdp_model.a"
  "libptdp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
