file(REMOVE_RECURSE
  "libptdp_pipeline.a"
)
