file(REMOVE_RECURSE
  "CMakeFiles/ptdp_pipeline.dir/executor.cpp.o"
  "CMakeFiles/ptdp_pipeline.dir/executor.cpp.o.d"
  "CMakeFiles/ptdp_pipeline.dir/schedule.cpp.o"
  "CMakeFiles/ptdp_pipeline.dir/schedule.cpp.o.d"
  "libptdp_pipeline.a"
  "libptdp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
