
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/executor.cpp" "src/pipeline/CMakeFiles/ptdp_pipeline.dir/executor.cpp.o" "gcc" "src/pipeline/CMakeFiles/ptdp_pipeline.dir/executor.cpp.o.d"
  "/root/repo/src/pipeline/schedule.cpp" "src/pipeline/CMakeFiles/ptdp_pipeline.dir/schedule.cpp.o" "gcc" "src/pipeline/CMakeFiles/ptdp_pipeline.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/ptdp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ptdp_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ptdp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
