# Empty dependencies file for ptdp_pipeline.
# This may be replaced when dependencies are built.
