file(REMOVE_RECURSE
  "libptdp_core.a"
)
