# Empty compiler generated dependencies file for ptdp_core.
# This may be replaced when dependencies are built.
