file(REMOVE_RECURSE
  "CMakeFiles/ptdp_core.dir/analytics.cpp.o"
  "CMakeFiles/ptdp_core.dir/analytics.cpp.o.d"
  "CMakeFiles/ptdp_core.dir/engine.cpp.o"
  "CMakeFiles/ptdp_core.dir/engine.cpp.o.d"
  "CMakeFiles/ptdp_core.dir/planner.cpp.o"
  "CMakeFiles/ptdp_core.dir/planner.cpp.o.d"
  "libptdp_core.a"
  "libptdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
