file(REMOVE_RECURSE
  "libptdp_data.a"
)
