# Empty dependencies file for ptdp_data.
# This may be replaced when dependencies are built.
