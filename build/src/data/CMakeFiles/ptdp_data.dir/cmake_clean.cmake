file(REMOVE_RECURSE
  "CMakeFiles/ptdp_data.dir/dataset.cpp.o"
  "CMakeFiles/ptdp_data.dir/dataset.cpp.o.d"
  "libptdp_data.a"
  "libptdp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptdp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
