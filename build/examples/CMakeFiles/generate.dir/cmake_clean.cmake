file(REMOVE_RECURSE
  "CMakeFiles/generate.dir/generate.cpp.o"
  "CMakeFiles/generate.dir/generate.cpp.o.d"
  "generate"
  "generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
