# Empty dependencies file for generate.
# This may be replaced when dependencies are built.
