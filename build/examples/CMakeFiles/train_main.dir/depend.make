# Empty dependencies file for train_main.
# This may be replaced when dependencies are built.
