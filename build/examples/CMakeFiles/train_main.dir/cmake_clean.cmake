file(REMOVE_RECURSE
  "CMakeFiles/train_main.dir/train_main.cpp.o"
  "CMakeFiles/train_main.dir/train_main.cpp.o.d"
  "train_main"
  "train_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
