file(REMOVE_RECURSE
  "CMakeFiles/reshard_checkpoint.dir/reshard_checkpoint.cpp.o"
  "CMakeFiles/reshard_checkpoint.dir/reshard_checkpoint.cpp.o.d"
  "reshard_checkpoint"
  "reshard_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reshard_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
