# Empty compiler generated dependencies file for reshard_checkpoint.
# This may be replaced when dependencies are built.
