file(REMOVE_RECURSE
  "CMakeFiles/planner.dir/planner.cpp.o"
  "CMakeFiles/planner.dir/planner.cpp.o.d"
  "planner"
  "planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
