# Empty compiler generated dependencies file for planner.
# This may be replaced when dependencies are built.
