# Empty compiler generated dependencies file for trillion_param_plan.
# This may be replaced when dependencies are built.
