file(REMOVE_RECURSE
  "CMakeFiles/trillion_param_plan.dir/trillion_param_plan.cpp.o"
  "CMakeFiles/trillion_param_plan.dir/trillion_param_plan.cpp.o.d"
  "trillion_param_plan"
  "trillion_param_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trillion_param_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
