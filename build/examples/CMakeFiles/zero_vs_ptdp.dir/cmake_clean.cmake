file(REMOVE_RECURSE
  "CMakeFiles/zero_vs_ptdp.dir/zero_vs_ptdp.cpp.o"
  "CMakeFiles/zero_vs_ptdp.dir/zero_vs_ptdp.cpp.o.d"
  "zero_vs_ptdp"
  "zero_vs_ptdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_vs_ptdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
