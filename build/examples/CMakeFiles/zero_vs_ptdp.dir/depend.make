# Empty dependencies file for zero_vs_ptdp.
# This may be replaced when dependencies are built.
