# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/dist_comm_test[1]_include.cmake")
include("/root/repo/build/tests/dist_process_groups_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_ops_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_schedule_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_executor_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/zero_test[1]_include.cmake")
include("/root/repo/build/tests/ckpt_test[1]_include.cmake")
include("/root/repo/build/tests/core_engine_test[1]_include.cmake")
include("/root/repo/build/tests/core_analytics_test[1]_include.cmake")
include("/root/repo/build/tests/core_planner_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/generate_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/ckpt_reshard_test[1]_include.cmake")
include("/root/repo/build/tests/property_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/lr_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_timeline_test[1]_include.cmake")
include("/root/repo/build/tests/dist_failure_test[1]_include.cmake")
include("/root/repo/build/tests/bert_mlm_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/zero_engine_test[1]_include.cmake")
include("/root/repo/build/tests/eval_bucketing_test[1]_include.cmake")
