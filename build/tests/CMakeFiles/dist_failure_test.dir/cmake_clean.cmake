file(REMOVE_RECURSE
  "CMakeFiles/dist_failure_test.dir/dist_failure_test.cpp.o"
  "CMakeFiles/dist_failure_test.dir/dist_failure_test.cpp.o.d"
  "dist_failure_test"
  "dist_failure_test.pdb"
  "dist_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
