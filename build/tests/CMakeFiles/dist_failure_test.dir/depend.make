# Empty dependencies file for dist_failure_test.
# This may be replaced when dependencies are built.
