# Empty dependencies file for core_analytics_test.
# This may be replaced when dependencies are built.
