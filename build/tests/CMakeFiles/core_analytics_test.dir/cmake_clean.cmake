file(REMOVE_RECURSE
  "CMakeFiles/core_analytics_test.dir/core_analytics_test.cpp.o"
  "CMakeFiles/core_analytics_test.dir/core_analytics_test.cpp.o.d"
  "core_analytics_test"
  "core_analytics_test.pdb"
  "core_analytics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_analytics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
