# Empty dependencies file for pipeline_executor_test.
# This may be replaced when dependencies are built.
