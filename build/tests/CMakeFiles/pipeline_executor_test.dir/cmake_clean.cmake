file(REMOVE_RECURSE
  "CMakeFiles/pipeline_executor_test.dir/pipeline_executor_test.cpp.o"
  "CMakeFiles/pipeline_executor_test.dir/pipeline_executor_test.cpp.o.d"
  "pipeline_executor_test"
  "pipeline_executor_test.pdb"
  "pipeline_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
