file(REMOVE_RECURSE
  "CMakeFiles/bert_mlm_test.dir/bert_mlm_test.cpp.o"
  "CMakeFiles/bert_mlm_test.dir/bert_mlm_test.cpp.o.d"
  "bert_mlm_test"
  "bert_mlm_test.pdb"
  "bert_mlm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_mlm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
