# Empty dependencies file for bert_mlm_test.
# This may be replaced when dependencies are built.
