file(REMOVE_RECURSE
  "CMakeFiles/core_planner_test.dir/core_planner_test.cpp.o"
  "CMakeFiles/core_planner_test.dir/core_planner_test.cpp.o.d"
  "core_planner_test"
  "core_planner_test.pdb"
  "core_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
