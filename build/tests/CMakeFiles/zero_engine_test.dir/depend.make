# Empty dependencies file for zero_engine_test.
# This may be replaced when dependencies are built.
