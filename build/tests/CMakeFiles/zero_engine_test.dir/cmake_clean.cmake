file(REMOVE_RECURSE
  "CMakeFiles/zero_engine_test.dir/zero_engine_test.cpp.o"
  "CMakeFiles/zero_engine_test.dir/zero_engine_test.cpp.o.d"
  "zero_engine_test"
  "zero_engine_test.pdb"
  "zero_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
