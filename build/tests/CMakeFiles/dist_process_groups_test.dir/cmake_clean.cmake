file(REMOVE_RECURSE
  "CMakeFiles/dist_process_groups_test.dir/dist_process_groups_test.cpp.o"
  "CMakeFiles/dist_process_groups_test.dir/dist_process_groups_test.cpp.o.d"
  "dist_process_groups_test"
  "dist_process_groups_test.pdb"
  "dist_process_groups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_process_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
