# Empty compiler generated dependencies file for dist_process_groups_test.
# This may be replaced when dependencies are built.
