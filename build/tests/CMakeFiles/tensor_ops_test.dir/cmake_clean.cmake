file(REMOVE_RECURSE
  "CMakeFiles/tensor_ops_test.dir/tensor_ops_test.cpp.o"
  "CMakeFiles/tensor_ops_test.dir/tensor_ops_test.cpp.o.d"
  "tensor_ops_test"
  "tensor_ops_test.pdb"
  "tensor_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
