# Empty dependencies file for misc_coverage_test.
# This may be replaced when dependencies are built.
