# Empty dependencies file for lr_scheduler_test.
# This may be replaced when dependencies are built.
