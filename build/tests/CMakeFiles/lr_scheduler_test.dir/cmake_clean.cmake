file(REMOVE_RECURSE
  "CMakeFiles/lr_scheduler_test.dir/lr_scheduler_test.cpp.o"
  "CMakeFiles/lr_scheduler_test.dir/lr_scheduler_test.cpp.o.d"
  "lr_scheduler_test"
  "lr_scheduler_test.pdb"
  "lr_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lr_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
