file(REMOVE_RECURSE
  "CMakeFiles/generate_test.dir/generate_test.cpp.o"
  "CMakeFiles/generate_test.dir/generate_test.cpp.o.d"
  "generate_test"
  "generate_test.pdb"
  "generate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
