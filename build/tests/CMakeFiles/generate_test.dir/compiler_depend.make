# Empty compiler generated dependencies file for generate_test.
# This may be replaced when dependencies are built.
