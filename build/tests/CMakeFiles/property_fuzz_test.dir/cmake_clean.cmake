file(REMOVE_RECURSE
  "CMakeFiles/property_fuzz_test.dir/property_fuzz_test.cpp.o"
  "CMakeFiles/property_fuzz_test.dir/property_fuzz_test.cpp.o.d"
  "property_fuzz_test"
  "property_fuzz_test.pdb"
  "property_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
