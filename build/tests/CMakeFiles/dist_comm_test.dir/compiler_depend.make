# Empty compiler generated dependencies file for dist_comm_test.
# This may be replaced when dependencies are built.
