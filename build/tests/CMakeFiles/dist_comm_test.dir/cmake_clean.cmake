file(REMOVE_RECURSE
  "CMakeFiles/dist_comm_test.dir/dist_comm_test.cpp.o"
  "CMakeFiles/dist_comm_test.dir/dist_comm_test.cpp.o.d"
  "dist_comm_test"
  "dist_comm_test.pdb"
  "dist_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
