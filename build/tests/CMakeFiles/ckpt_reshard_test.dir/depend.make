# Empty dependencies file for ckpt_reshard_test.
# This may be replaced when dependencies are built.
