file(REMOVE_RECURSE
  "CMakeFiles/ckpt_reshard_test.dir/ckpt_reshard_test.cpp.o"
  "CMakeFiles/ckpt_reshard_test.dir/ckpt_reshard_test.cpp.o.d"
  "ckpt_reshard_test"
  "ckpt_reshard_test.pdb"
  "ckpt_reshard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_reshard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
