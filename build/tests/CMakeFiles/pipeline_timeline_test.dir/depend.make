# Empty dependencies file for pipeline_timeline_test.
# This may be replaced when dependencies are built.
