file(REMOVE_RECURSE
  "CMakeFiles/pipeline_timeline_test.dir/pipeline_timeline_test.cpp.o"
  "CMakeFiles/pipeline_timeline_test.dir/pipeline_timeline_test.cpp.o.d"
  "pipeline_timeline_test"
  "pipeline_timeline_test.pdb"
  "pipeline_timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
