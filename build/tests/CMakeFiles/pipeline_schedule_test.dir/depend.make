# Empty dependencies file for pipeline_schedule_test.
# This may be replaced when dependencies are built.
