file(REMOVE_RECURSE
  "CMakeFiles/pipeline_schedule_test.dir/pipeline_schedule_test.cpp.o"
  "CMakeFiles/pipeline_schedule_test.dir/pipeline_schedule_test.cpp.o.d"
  "pipeline_schedule_test"
  "pipeline_schedule_test.pdb"
  "pipeline_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
