file(REMOVE_RECURSE
  "CMakeFiles/eval_bucketing_test.dir/eval_bucketing_test.cpp.o"
  "CMakeFiles/eval_bucketing_test.dir/eval_bucketing_test.cpp.o.d"
  "eval_bucketing_test"
  "eval_bucketing_test.pdb"
  "eval_bucketing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_bucketing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
