# Empty compiler generated dependencies file for eval_bucketing_test.
# This may be replaced when dependencies are built.
