# Empty dependencies file for zero_test.
# This may be replaced when dependencies are built.
