file(REMOVE_RECURSE
  "CMakeFiles/zero_test.dir/zero_test.cpp.o"
  "CMakeFiles/zero_test.dir/zero_test.cpp.o.d"
  "zero_test"
  "zero_test.pdb"
  "zero_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
