# Empty dependencies file for ckpt_test.
# This may be replaced when dependencies are built.
