file(REMOVE_RECURSE
  "CMakeFiles/ckpt_test.dir/ckpt_test.cpp.o"
  "CMakeFiles/ckpt_test.dir/ckpt_test.cpp.o.d"
  "ckpt_test"
  "ckpt_test.pdb"
  "ckpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
