file(REMOVE_RECURSE
  "CMakeFiles/fig06_bubble_fraction.dir/fig06_bubble_fraction.cpp.o"
  "CMakeFiles/fig06_bubble_fraction.dir/fig06_bubble_fraction.cpp.o.d"
  "fig06_bubble_fraction"
  "fig06_bubble_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_bubble_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
