# Empty dependencies file for fig06_bubble_fraction.
# This may be replaced when dependencies are built.
