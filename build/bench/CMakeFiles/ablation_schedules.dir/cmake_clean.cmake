file(REMOVE_RECURSE
  "CMakeFiles/ablation_schedules.dir/ablation_schedules.cpp.o"
  "CMakeFiles/ablation_schedules.dir/ablation_schedules.cpp.o.d"
  "ablation_schedules"
  "ablation_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
