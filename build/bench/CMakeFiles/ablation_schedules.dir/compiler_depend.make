# Empty compiler generated dependencies file for ablation_schedules.
# This may be replaced when dependencies are built.
