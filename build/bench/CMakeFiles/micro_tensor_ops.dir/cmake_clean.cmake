file(REMOVE_RECURSE
  "CMakeFiles/micro_tensor_ops.dir/micro_tensor_ops.cpp.o"
  "CMakeFiles/micro_tensor_ops.dir/micro_tensor_ops.cpp.o.d"
  "micro_tensor_ops"
  "micro_tensor_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tensor_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
