file(REMOVE_RECURSE
  "CMakeFiles/fig15_tensor_vs_data.dir/fig15_tensor_vs_data.cpp.o"
  "CMakeFiles/fig15_tensor_vs_data.dir/fig15_tensor_vs_data.cpp.o.d"
  "fig15_tensor_vs_data"
  "fig15_tensor_vs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tensor_vs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
