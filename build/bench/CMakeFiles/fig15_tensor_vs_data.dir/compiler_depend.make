# Empty compiler generated dependencies file for fig15_tensor_vs_data.
# This may be replaced when dependencies are built.
