# Empty compiler generated dependencies file for fig11_pipeline_weak_scaling.
# This may be replaced when dependencies are built.
