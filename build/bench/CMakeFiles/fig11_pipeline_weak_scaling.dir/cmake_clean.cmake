file(REMOVE_RECURSE
  "CMakeFiles/fig11_pipeline_weak_scaling.dir/fig11_pipeline_weak_scaling.cpp.o"
  "CMakeFiles/fig11_pipeline_weak_scaling.dir/fig11_pipeline_weak_scaling.cpp.o.d"
  "fig11_pipeline_weak_scaling"
  "fig11_pipeline_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pipeline_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
