# Empty dependencies file for fig08_estimated_throughput.
# This may be replaced when dependencies are built.
