file(REMOVE_RECURSE
  "CMakeFiles/fig08_estimated_throughput.dir/fig08_estimated_throughput.cpp.o"
  "CMakeFiles/fig08_estimated_throughput.dir/fig08_estimated_throughput.cpp.o.d"
  "fig08_estimated_throughput"
  "fig08_estimated_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_estimated_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
