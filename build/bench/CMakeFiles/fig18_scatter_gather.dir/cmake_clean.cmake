file(REMOVE_RECURSE
  "CMakeFiles/fig18_scatter_gather.dir/fig18_scatter_gather.cpp.o"
  "CMakeFiles/fig18_scatter_gather.dir/fig18_scatter_gather.cpp.o.d"
  "fig18_scatter_gather"
  "fig18_scatter_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_scatter_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
