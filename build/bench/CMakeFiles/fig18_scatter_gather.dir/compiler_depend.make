# Empty compiler generated dependencies file for fig18_scatter_gather.
# This may be replaced when dependencies are built.
