
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig18_scatter_gather.cpp" "bench/CMakeFiles/fig18_scatter_gather.dir/fig18_scatter_gather.cpp.o" "gcc" "bench/CMakeFiles/fig18_scatter_gather.dir/fig18_scatter_gather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ptdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ptdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/ptdp_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/ptdp_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/zero/CMakeFiles/ptdp_zero.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ptdp_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ptdp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ptdp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ptdp_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
