# Empty dependencies file for sec510_checkpointing.
# This may be replaced when dependencies are built.
