file(REMOVE_RECURSE
  "CMakeFiles/sec510_checkpointing.dir/sec510_checkpointing.cpp.o"
  "CMakeFiles/sec510_checkpointing.dir/sec510_checkpointing.cpp.o.d"
  "sec510_checkpointing"
  "sec510_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec510_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
