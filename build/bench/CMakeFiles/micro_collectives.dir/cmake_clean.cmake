file(REMOVE_RECURSE
  "CMakeFiles/micro_collectives.dir/micro_collectives.cpp.o"
  "CMakeFiles/micro_collectives.dir/micro_collectives.cpp.o.d"
  "micro_collectives"
  "micro_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
