# Empty compiler generated dependencies file for fig16_microbatch_size.
# This may be replaced when dependencies are built.
