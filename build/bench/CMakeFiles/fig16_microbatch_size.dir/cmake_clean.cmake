file(REMOVE_RECURSE
  "CMakeFiles/fig16_microbatch_size.dir/fig16_microbatch_size.cpp.o"
  "CMakeFiles/fig16_microbatch_size.dir/fig16_microbatch_size.cpp.o.d"
  "fig16_microbatch_size"
  "fig16_microbatch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_microbatch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
