# Empty dependencies file for ablation_planner.
# This may be replaced when dependencies are built.
