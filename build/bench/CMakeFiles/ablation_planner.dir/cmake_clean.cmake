file(REMOVE_RECURSE
  "CMakeFiles/ablation_planner.dir/ablation_planner.cpp.o"
  "CMakeFiles/ablation_planner.dir/ablation_planner.cpp.o.d"
  "ablation_planner"
  "ablation_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
