file(REMOVE_RECURSE
  "CMakeFiles/table1_weak_scaling.dir/table1_weak_scaling.cpp.o"
  "CMakeFiles/table1_weak_scaling.dir/table1_weak_scaling.cpp.o.d"
  "table1_weak_scaling"
  "table1_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
