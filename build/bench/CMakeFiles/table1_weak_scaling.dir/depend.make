# Empty dependencies file for table1_weak_scaling.
# This may be replaced when dependencies are built.
