file(REMOVE_RECURSE
  "CMakeFiles/fig17_activation_recompute.dir/fig17_activation_recompute.cpp.o"
  "CMakeFiles/fig17_activation_recompute.dir/fig17_activation_recompute.cpp.o.d"
  "fig17_activation_recompute"
  "fig17_activation_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_activation_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
