# Empty dependencies file for fig17_activation_recompute.
# This may be replaced when dependencies are built.
