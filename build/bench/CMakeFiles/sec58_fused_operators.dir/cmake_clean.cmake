file(REMOVE_RECURSE
  "CMakeFiles/sec58_fused_operators.dir/sec58_fused_operators.cpp.o"
  "CMakeFiles/sec58_fused_operators.dir/sec58_fused_operators.cpp.o.d"
  "sec58_fused_operators"
  "sec58_fused_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec58_fused_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
