# Empty dependencies file for sec58_fused_operators.
# This may be replaced when dependencies are built.
