file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpointing.dir/ablation_checkpointing.cpp.o"
  "CMakeFiles/ablation_checkpointing.dir/ablation_checkpointing.cpp.o.d"
  "ablation_checkpointing"
  "ablation_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
