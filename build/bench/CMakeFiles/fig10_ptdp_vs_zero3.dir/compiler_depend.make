# Empty compiler generated dependencies file for fig10_ptdp_vs_zero3.
# This may be replaced when dependencies are built.
