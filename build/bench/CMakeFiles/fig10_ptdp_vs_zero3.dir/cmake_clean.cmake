file(REMOVE_RECURSE
  "CMakeFiles/fig10_ptdp_vs_zero3.dir/fig10_ptdp_vs_zero3.cpp.o"
  "CMakeFiles/fig10_ptdp_vs_zero3.dir/fig10_ptdp_vs_zero3.cpp.o.d"
  "fig10_ptdp_vs_zero3"
  "fig10_ptdp_vs_zero3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ptdp_vs_zero3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
