# Empty compiler generated dependencies file for fig07_microbatch_throughput.
# This may be replaced when dependencies are built.
