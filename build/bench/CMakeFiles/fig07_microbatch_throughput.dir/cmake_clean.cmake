file(REMOVE_RECURSE
  "CMakeFiles/fig07_microbatch_throughput.dir/fig07_microbatch_throughput.cpp.o"
  "CMakeFiles/fig07_microbatch_throughput.dir/fig07_microbatch_throughput.cpp.o.d"
  "fig07_microbatch_throughput"
  "fig07_microbatch_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_microbatch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
