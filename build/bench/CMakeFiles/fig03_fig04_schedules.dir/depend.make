# Empty dependencies file for fig03_fig04_schedules.
# This may be replaced when dependencies are built.
