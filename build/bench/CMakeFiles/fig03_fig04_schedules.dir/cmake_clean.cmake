file(REMOVE_RECURSE
  "CMakeFiles/fig03_fig04_schedules.dir/fig03_fig04_schedules.cpp.o"
  "CMakeFiles/fig03_fig04_schedules.dir/fig03_fig04_schedules.cpp.o.d"
  "fig03_fig04_schedules"
  "fig03_fig04_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fig04_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
