# Empty compiler generated dependencies file for fig13_tensor_vs_pipeline.
# This may be replaced when dependencies are built.
