file(REMOVE_RECURSE
  "CMakeFiles/fig13_tensor_vs_pipeline.dir/fig13_tensor_vs_pipeline.cpp.o"
  "CMakeFiles/fig13_tensor_vs_pipeline.dir/fig13_tensor_vs_pipeline.cpp.o.d"
  "fig13_tensor_vs_pipeline"
  "fig13_tensor_vs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tensor_vs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
