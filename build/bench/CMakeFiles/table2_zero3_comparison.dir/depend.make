# Empty dependencies file for table2_zero3_comparison.
# This may be replaced when dependencies are built.
