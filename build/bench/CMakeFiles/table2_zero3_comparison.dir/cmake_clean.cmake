file(REMOVE_RECURSE
  "CMakeFiles/table2_zero3_comparison.dir/table2_zero3_comparison.cpp.o"
  "CMakeFiles/table2_zero3_comparison.dir/table2_zero3_comparison.cpp.o.d"
  "table2_zero3_comparison"
  "table2_zero3_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_zero3_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
