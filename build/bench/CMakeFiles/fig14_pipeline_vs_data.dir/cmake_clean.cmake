file(REMOVE_RECURSE
  "CMakeFiles/fig14_pipeline_vs_data.dir/fig14_pipeline_vs_data.cpp.o"
  "CMakeFiles/fig14_pipeline_vs_data.dir/fig14_pipeline_vs_data.cpp.o.d"
  "fig14_pipeline_vs_data"
  "fig14_pipeline_vs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_pipeline_vs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
