# Empty compiler generated dependencies file for fig14_pipeline_vs_data.
# This may be replaced when dependencies are built.
