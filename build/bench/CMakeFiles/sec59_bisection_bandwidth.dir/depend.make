# Empty dependencies file for sec59_bisection_bandwidth.
# This may be replaced when dependencies are built.
