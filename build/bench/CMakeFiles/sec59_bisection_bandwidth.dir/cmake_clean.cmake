file(REMOVE_RECURSE
  "CMakeFiles/sec59_bisection_bandwidth.dir/sec59_bisection_bandwidth.cpp.o"
  "CMakeFiles/sec59_bisection_bandwidth.dir/sec59_bisection_bandwidth.cpp.o.d"
  "sec59_bisection_bandwidth"
  "sec59_bisection_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec59_bisection_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
