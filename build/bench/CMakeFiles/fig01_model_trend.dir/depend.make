# Empty dependencies file for fig01_model_trend.
# This may be replaced when dependencies are built.
