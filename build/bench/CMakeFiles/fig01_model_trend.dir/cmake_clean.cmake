file(REMOVE_RECURSE
  "CMakeFiles/fig01_model_trend.dir/fig01_model_trend.cpp.o"
  "CMakeFiles/fig01_model_trend.dir/fig01_model_trend.cpp.o.d"
  "fig01_model_trend"
  "fig01_model_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_model_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
