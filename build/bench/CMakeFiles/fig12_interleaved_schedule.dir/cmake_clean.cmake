file(REMOVE_RECURSE
  "CMakeFiles/fig12_interleaved_schedule.dir/fig12_interleaved_schedule.cpp.o"
  "CMakeFiles/fig12_interleaved_schedule.dir/fig12_interleaved_schedule.cpp.o.d"
  "fig12_interleaved_schedule"
  "fig12_interleaved_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_interleaved_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
