# Empty dependencies file for fig12_interleaved_schedule.
# This may be replaced when dependencies are built.
